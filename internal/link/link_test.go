package link

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"iothub/internal/energy"
	"iothub/internal/sim"
)

func newLink(t *testing.T) (*Link, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	l, err := New(s, m, "link", DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l, s, m
}

func TestNewRejectsBadParams(t *testing.T) {
	s := sim.NewScheduler()
	m := energy.NewMeter(s)
	if _, err := New(s, m, "l", Params{BytesPerSec: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(s, m, "l", Params{BytesPerSec: 1, FrameOverhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestTransferDurationPerSampleVsBulk(t *testing.T) {
	l, _, _ := newLink(t)
	perSample := l.TransferDuration(12)
	bulk := l.TransferDuration(12_000)
	thousand := 1000 * perSample
	if bulk >= thousand {
		t.Errorf("bulk %v not cheaper than 1000 per-sample transfers %v", bulk, thousand)
	}
	// Calibration targets from Fig. 8: ~192 ms per-sample total, ~100 ms bulk.
	if thousand < 150*time.Millisecond || thousand > 250*time.Millisecond {
		t.Errorf("1000 per-sample transfers = %v, want ~190ms", thousand)
	}
	if bulk < 80*time.Millisecond || bulk > 130*time.Millisecond {
		t.Errorf("bulk 12KB transfer = %v, want ~103ms", bulk)
	}
}

func TestWireTimeZeroForEmptyPayload(t *testing.T) {
	l, _, _ := newLink(t)
	if got := l.WireTime(0); got != 0 {
		t.Errorf("WireTime(0) = %v, want 0", got)
	}
	if got := l.TransferDuration(0); got != l.Params().FrameOverhead {
		t.Errorf("TransferDuration(0) = %v, want framing only", got)
	}
}

func TestTransmitChargesWireEnergy(t *testing.T) {
	l, s, m := newLink(t)
	d, err := l.Transmit(11_700, energy.DataTransfer) // exactly 100 ms of wire
	if err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := l.Params().WireW * 0.1
	got := m.Total()[energy.DataTransfer]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("wire energy = %v J, want %v", got, want)
	}
	if d != l.TransferDuration(11_700) {
		t.Errorf("Transmit duration = %v, want %v", d, l.TransferDuration(11_700))
	}
}

func TestTransmitZeroBytesNoEnergy(t *testing.T) {
	l, s, m := newLink(t)
	if _, err := l.Transmit(0, energy.DataTransfer); err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Total().Total(); got != 0 {
		t.Errorf("energy = %v, want 0", got)
	}
}

func TestTransmitReliableNilCheckMatchesTransmit(t *testing.T) {
	// The fault-free reliable path must be byte-identical to plain Transmit:
	// same duration, same energy, no CRC trailer.
	la, sa, ma := newLink(t)
	lb, sb, mb := newLink(t)
	da, err := la.Transmit(1200, energy.DataTransfer)
	if err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	rep, err := lb.TransmitReliable(1200, energy.DataTransfer, RetryPolicy{MaxRetries: 3}, nil)
	if err != nil {
		t.Fatalf("TransmitReliable: %v", err)
	}
	if err := sa.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Duration != da || rep.Attempts != 1 || !rep.Delivered {
		t.Errorf("nil-check report = %+v, want duration %v, 1 attempt, delivered", rep, da)
	}
	if ea, eb := ma.Total().Total(), mb.Total().Total(); ea != eb {
		t.Errorf("energy diverged: transmit %v, reliable %v", ea, eb)
	}
}

func TestTransmitReliableRetriesCostWireEnergy(t *testing.T) {
	l, s, m := newLink(t)
	pol := RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond, Factor: 2}
	// Corrupt, lost, then delivered on the third frame.
	outcomes := []Outcome{TxCorrupt, TxLost, TxOK}
	rep, err := l.TransmitReliable(1166, energy.DataTransfer, pol, func(attempt int) Outcome {
		return outcomes[attempt-1]
	})
	if err != nil {
		t.Fatalf("TransmitReliable: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Delivered || rep.Attempts != 3 || rep.Corrupted != 1 || rep.Lost != 1 {
		t.Errorf("report = %+v, want delivered on attempt 3 with 1 corrupt + 1 lost", rep)
	}
	p := l.Params()
	wire := l.WireTime(1166 + p.CRCBytes)
	// attempt1 (corrupt) + backoff 1ms + attempt2 (lost, + timeout) +
	// backoff 2ms + attempt3 (ok).
	want := 3*(p.FrameOverhead+wire) + p.LossTimeout + 1*time.Millisecond + 2*time.Millisecond
	if rep.Duration != want {
		t.Errorf("duration = %v, want %v", rep.Duration, want)
	}
	// Every attempt, failed or not, powered the wire for the full frame.
	wantJ := p.WireW * (3 * wire).Seconds()
	got := m.Total()[energy.DataTransfer]
	if math.Abs(got-wantJ) > 1e-9 {
		t.Errorf("wire energy = %v J, want %v (3 full frames)", got, wantJ)
	}
}

func TestTransmitReliableGivesUpAfterMaxRetries(t *testing.T) {
	l, s, _ := newLink(t)
	attempts := 0
	rep, err := l.TransmitReliable(100, energy.DataTransfer, RetryPolicy{MaxRetries: 2},
		func(int) Outcome { attempts++; return TxLost })
	if err != nil {
		t.Fatalf("TransmitReliable: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Delivered {
		t.Error("all-lost transfer reported delivered")
	}
	if attempts != 3 || rep.Attempts != 3 || rep.Lost != 3 {
		t.Errorf("report = %+v with %d checks, want 3 attempts all lost", rep, attempts)
	}
}

// Property: transfer duration is monotone in payload size and always at
// least the framing overhead.
func TestPropertyTransferMonotone(t *testing.T) {
	l, _, _ := newLink(t)
	f := func(a, b uint16) bool {
		da, db := l.TransferDuration(int(a)), l.TransferDuration(int(b))
		if a <= b && da > db {
			return false
		}
		return da >= l.Params().FrameOverhead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
