// Package core is the paper's contribution packaged as a reusable library:
// given workload characterizations (Figure 6) and the hub's hardware
// calibration, it decides which energy optimization applies to which app —
// the light/heavy classification of §III-B, the Batching+COM (BCOM)
// partitioning of §IV-E3, and a first-order analytic estimate of the savings
// each scheme yields (the reasoning of §III-A/§III-B4, checked against the
// full simulator by the test suite).
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"iothub/internal/apps"
	"iothub/internal/hub"
	"iothub/internal/scheme"
	"iothub/internal/sensor"
)

// Classification explains whether one workload can be offloaded to the MCU
// and why (the "MCU-friendly" analysis of §III-B1/§IV-C).
type Classification struct {
	ID          apps.ID
	Offloadable bool
	// Reasons lists the failed gates when not offloadable.
	Reasons []string

	// MemoryNeedBytes is the MCU-resident footprint: heap + stack + the
	// widest sensor sample as a streaming buffer.
	MemoryNeedBytes int
	// MCUComputePerWindow is the app-specific computation time on the MCU.
	MCUComputePerWindow time.Duration
	// MCUBusyPerWindow adds the per-sample driver work — the app's total
	// claim on the MCU per QoS window.
	MCUBusyPerWindow time.Duration
	// BatchBytesPerWindow is the MCU RAM a full-window batch needs.
	BatchBytesPerWindow int
}

// Classify evaluates the offload gates for one workload.
func Classify(spec apps.Spec, params hub.Params) (Classification, error) {
	if err := spec.Validate(); err != nil {
		return Classification{}, err
	}
	if err := params.Validate(); err != nil {
		return Classification{}, err
	}
	c := Classification{ID: spec.ID}

	widest := 0
	var reads time.Duration
	for _, u := range spec.Sensors {
		sp, err := sensor.Lookup(u.Sensor)
		if err != nil {
			return Classification{}, err
		}
		if !sp.MCUFriendly {
			c.Reasons = append(c.Reasons,
				fmt.Sprintf("sensor %s is MCU-unfriendly", u.Sensor))
		}
		b, err := u.SampleBytes()
		if err != nil {
			return Classification{}, err
		}
		if b > widest {
			widest = b
		}
		n := sp.SamplesPerWindow(spec.Window)
		reads += time.Duration(n) * params.MCU.PerReadCPU
	}
	c.MemoryNeedBytes = spec.MemoryBytes() + widest

	bytes, err := spec.DataBytesPerWindow()
	if err != nil {
		return Classification{}, err
	}
	c.BatchBytesPerWindow = bytes

	fullRate := spec.MIPS * spec.Window.Seconds() / params.CPU.MIPS
	c.MCUComputePerWindow = time.Duration(
		fullRate * float64(time.Second) * params.MCU.BaseSlowdown * penalty(spec.FPPenalty))
	c.MCUBusyPerWindow = c.MCUComputePerWindow + reads

	if spec.Heavy {
		c.Reasons = append(c.Reasons, "declared heavy-weight")
	}
	if c.MemoryNeedBytes > params.MCU.UsableRAM() {
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"footprint %d B exceeds MCU RAM %d B", c.MemoryNeedBytes, params.MCU.UsableRAM()))
	}
	if c.MCUBusyPerWindow > spec.Window {
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"MCU needs %v per %v window (QoS violation)", c.MCUBusyPerWindow, spec.Window))
	}
	c.Offloadable = len(c.Reasons) == 0
	return c, nil
}

func penalty(p float64) float64 {
	if p < 1 {
		return 1
	}
	return p
}

// ErrNothingToPlan is returned when PlanBCOM is called without apps.
var ErrNothingToPlan = errors.New("core: no apps to plan")

// Plan is the outcome of partitioning a concurrent app mix.
type Plan struct {
	// Scheme is the recommended hub scheme: COM when everything offloads,
	// Batching when nothing does, BCOM for a mix.
	Scheme hub.Scheme
	// Assign is the per-app mode map, directly usable as hub.Config.Assign
	// when Scheme is BCOM.
	Assign map[apps.ID]hub.Mode
	// Classifications records the per-app gate analysis.
	Classifications map[apps.ID]Classification
}

// Policies materializes the plan's partition as executable policy objects —
// the same decision seam the hub conductor consults, so a caller can inspect
// (or override) exactly what each app will do per routine before running.
func (p *Plan) Policies() map[apps.ID]scheme.Policy {
	out := make(map[apps.ID]scheme.Policy, len(p.Assign))
	for id, m := range p.Assign {
		out[id] = scheme.ForMode(m)
	}
	return out
}

// PlanBCOM partitions a concurrent mix: offloadable apps go to the MCU as
// long as the MCU's aggregate time budget holds (offloaded apps time-share
// one binary, §III-B3), everything else batches. Apps are considered in
// descending per-window sample count — the apps whose interrupt traffic
// hurts the CPU most claim MCU capacity first.
func PlanBCOM(list []apps.App, params hub.Params) (*Plan, error) {
	if len(list) == 0 {
		return nil, ErrNothingToPlan
	}
	plan := &Plan{
		Assign:          make(map[apps.ID]hub.Mode, len(list)),
		Classifications: make(map[apps.ID]Classification, len(list)),
	}
	type cand struct {
		spec apps.Spec
		cls  Classification
	}
	var cands []cand
	window := list[0].Spec().Window
	for _, a := range list {
		spec := a.Spec()
		cls, err := Classify(spec, params)
		if err != nil {
			return nil, err
		}
		plan.Classifications[spec.ID] = cls
		cands = append(cands, cand{spec: spec, cls: cls})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ni, _ := cands[i].spec.InterruptsPerWindow()
		nj, _ := cands[j].spec.InterruptsPerWindow()
		return ni > nj
	})

	// The MCU must also keep servicing the batched apps' reads; reserve
	// their driver time before admitting offloads.
	budget := window
	for _, c := range cands {
		if !c.cls.Offloadable {
			budget -= c.cls.MCUBusyPerWindow - c.cls.MCUComputePerWindow
		}
	}
	maxMem := 0
	offloaded, batched := 0, 0
	for _, c := range cands {
		fits := c.cls.Offloadable &&
			c.cls.MCUBusyPerWindow <= budget &&
			c.cls.MemoryNeedBytes <= params.MCU.UsableRAM()
		if fits {
			plan.Assign[c.spec.ID] = hub.Offloaded
			budget -= c.cls.MCUBusyPerWindow
			if c.cls.MemoryNeedBytes > maxMem {
				maxMem = c.cls.MemoryNeedBytes
			}
			offloaded++
		} else {
			plan.Assign[c.spec.ID] = hub.Batched
			batched++
		}
	}
	switch {
	case batched == 0:
		plan.Scheme = hub.COM
	case offloaded == 0:
		plan.Scheme = hub.Batching
	default:
		plan.Scheme = hub.BCOM
	}
	return plan, nil
}

// Savings is a first-order analytic estimate of per-window energy under each
// scheme, derived from the calibration constants the way §III-A reasons
// about the step counter. The simulator is the ground truth; these estimates
// exist for capacity planning and are validated against it within tolerance
// by the test suite.
type Savings struct {
	BaselineJoules float64
	BatchingJoules float64
	COMJoules      float64
}

// BatchingSaving is the estimated fractional saving of Batching vs Baseline.
func (s Savings) BatchingSaving() float64 { return 1 - s.BatchingJoules/s.BaselineJoules }

// COMSaving is the estimated fractional saving of COM vs Baseline.
func (s Savings) COMSaving() float64 { return 1 - s.COMJoules/s.BaselineJoules }

// Estimate computes the analytic per-window energies for a single app.
func Estimate(spec apps.Spec, params hub.Params) (Savings, error) {
	cls, err := Classify(spec, params)
	if err != nil {
		return Savings{}, err
	}
	window := spec.Window.Seconds()

	// Shared quantities.
	var ioCPU, reads, sensorE float64
	var bytes int
	minPeriod := spec.Window
	for _, u := range spec.Sensors {
		sp, err := sensor.Lookup(u.Sensor)
		if err != nil {
			return Savings{}, err
		}
		n := sp.SamplesPerWindow(spec.Window)
		b, err := u.SampleBytes()
		if err != nil {
			return Savings{}, err
		}
		bytes += n * b
		per := params.CPUIrqHandle.Seconds() +
			params.Link.FrameOverhead.Seconds() + float64(b)/params.Link.BytesPerSec
		ioCPU += float64(n) * per
		reads += float64(n) * params.MCU.PerReadCPU.Seconds()
		sensorE += sp.PowerTyp * sp.ReadTime.Seconds() * float64(n)
		if p := sp.SamplePeriod(spec.Window); p < minPeriod {
			minPeriod = p
		}
	}
	compute, err := spec.CPUComputeTime(params.CPU.MIPS)
	if err != nil {
		return Savings{}, err
	}
	mcuIdleE := params.MCU.IdleW * window
	collectE := reads*params.MCU.ActiveW + sensorE

	// Baseline: CPU busy for interrupts+transfers+compute; gaps stall at
	// WFI when below the break-even, sleep otherwise.
	busy := ioCPU + compute.Seconds()
	if busy > window {
		busy = window
	}
	gap := window - busy
	gapW := params.CPU.WFIW
	if minPeriod > params.CPU.SleepBreakEven() {
		gapW = params.CPU.SleepW
	}
	baseline := busy*params.CPU.ActiveW + gap*gapW +
		ioCPU*params.MCU.ActiveW + collectE + mcuIdleE +
		wireEnergy(bytes, params)

	// Batching: one bulk transfer, CPU suspended while the MCU batches.
	bulk := params.Link.FrameOverhead.Seconds() + float64(bytes)/params.Link.BytesPerSec
	busyB := bulk + params.CPUIrqHandle.Seconds() + compute.Seconds()
	if busyB > window {
		busyB = window
	}
	batching := busyB*params.CPU.ActiveW + (window-busyB)*params.CPU.SleepW +
		bulk*params.MCU.ActiveW + collectE + mcuIdleE + wireEnergy(bytes, params)

	// COM: MCU computes, CPU deep-sleeps, only a result notification moves.
	note := params.CPUIrqHandle.Seconds() +
		params.Link.FrameOverhead.Seconds() + float64(params.ResultBytes)/params.Link.BytesPerSec
	com := note*params.CPU.ActiveW + (window-note)*params.CPU.DeepSleepW +
		cls.MCUComputePerWindow.Seconds()*params.MCU.ActiveW + collectE + mcuIdleE +
		wireEnergy(params.ResultBytes, params)

	return Savings{BaselineJoules: baseline, BatchingJoules: batching, COMJoules: com}, nil
}

func wireEnergy(bytes int, params hub.Params) float64 {
	return float64(bytes) / params.Link.BytesPerSec * params.Link.WireW
}
