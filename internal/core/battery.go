package core

import (
	"time"

	"iothub/internal/apps"
	"iothub/internal/hub"
	"iothub/internal/power"
)

// Battery describes the energy source powering a deployed hub — the unit
// deployment planning actually cares about (the paper's motivation: billions
// of devices whose batteries someone has to change). It is a thin planning
// wrapper over power.Battery, the live supply model the simulator draws down
// at run time; the arithmetic lives there so the analytic projection and the
// in-run physics can never disagree.
type Battery struct {
	// CapacityMAh is the rated capacity in milliamp-hours.
	CapacityMAh float64
	// Volts is the nominal pack voltage.
	Volts float64
	// DerateFraction discounts usable capacity for aging/temperature
	// (0 = use a typical 0.85).
	DerateFraction float64
}

// TypicalPowerBank returns a common 10 Ah, 5 V USB pack.
func TypicalPowerBank() Battery {
	return Battery{CapacityMAh: 10_000, Volts: 5}
}

// Supply converts the planning battery into the simulator's live supply
// model (internal/power), ready to arm a hub.Scenario.
func (b Battery) Supply() power.Battery {
	return power.Battery{CapacityMAh: b.CapacityMAh, Volts: b.Volts, DerateFraction: b.DerateFraction}
}

// UsableJoules is the battery's deliverable energy.
func (b Battery) UsableJoules() (float64, error) {
	return b.Supply().UsableJoules()
}

// LifetimeEstimate is the projected runtime per scheme for one workload.
type LifetimeEstimate struct {
	Baseline time.Duration
	Batching time.Duration
	COM      time.Duration
}

// Lifetime projects how long a battery powers the hub running one workload
// under each scheme, using the analytic energy model (validated against the
// simulator by the Estimate tests).
func Lifetime(spec apps.Spec, params hub.Params, battery Battery) (LifetimeEstimate, error) {
	joules, err := battery.UsableJoules()
	if err != nil {
		return LifetimeEstimate{}, err
	}
	est, err := Estimate(spec, params)
	if err != nil {
		return LifetimeEstimate{}, err
	}
	perWindow := spec.Window.Seconds()
	toLife := func(perWindowJ float64) time.Duration {
		if perWindowJ <= 0 {
			return 0
		}
		seconds := joules / (perWindowJ / perWindow)
		return time.Duration(seconds * float64(time.Second))
	}
	return LifetimeEstimate{
		Baseline: toLife(est.BaselineJoules),
		Batching: toLife(est.BatchingJoules),
		COM:      toLife(est.COMJoules),
	}, nil
}
