package core

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/hub"
)

// Battery describes the energy source powering a deployed hub — the unit
// deployment planning actually cares about (the paper's motivation: billions
// of devices whose batteries someone has to change).
type Battery struct {
	// CapacityMAh is the rated capacity in milliamp-hours.
	CapacityMAh float64
	// Volts is the nominal pack voltage.
	Volts float64
	// DerateFraction discounts usable capacity for aging/temperature
	// (0 = use a typical 0.85).
	DerateFraction float64
}

// TypicalPowerBank returns a common 10 Ah, 5 V USB pack.
func TypicalPowerBank() Battery {
	return Battery{CapacityMAh: 10_000, Volts: 5}
}

// UsableJoules is the battery's deliverable energy.
func (b Battery) UsableJoules() (float64, error) {
	if b.CapacityMAh <= 0 || b.Volts <= 0 {
		return 0, fmt.Errorf("core: battery %v mAh @ %v V", b.CapacityMAh, b.Volts)
	}
	derate := b.DerateFraction
	if derate == 0 {
		derate = 0.85
	}
	if derate <= 0 || derate > 1 {
		return 0, fmt.Errorf("core: derate %v outside (0, 1]", derate)
	}
	return b.CapacityMAh / 1000 * 3600 * b.Volts * derate, nil
}

// LifetimeEstimate is the projected runtime per scheme for one workload.
type LifetimeEstimate struct {
	Baseline time.Duration
	Batching time.Duration
	COM      time.Duration
}

// Lifetime projects how long a battery powers the hub running one workload
// under each scheme, using the analytic energy model (validated against the
// simulator by the Estimate tests).
func Lifetime(spec apps.Spec, params hub.Params, battery Battery) (LifetimeEstimate, error) {
	joules, err := battery.UsableJoules()
	if err != nil {
		return LifetimeEstimate{}, err
	}
	est, err := Estimate(spec, params)
	if err != nil {
		return LifetimeEstimate{}, err
	}
	perWindow := spec.Window.Seconds()
	toLife := func(perWindowJ float64) time.Duration {
		if perWindowJ <= 0 {
			return 0
		}
		seconds := joules / (perWindowJ / perWindow)
		return time.Duration(seconds * float64(time.Second))
	}
	return LifetimeEstimate{
		Baseline: toLife(est.BaselineJoules),
		Batching: toLife(est.BatchingJoules),
		COM:      toLife(est.COMJoules),
	}, nil
}
