package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/apps/catalog"
	"iothub/internal/hub"
)

func defaultApps(t *testing.T, ids ...apps.ID) []apps.App {
	t.Helper()
	out := make([]apps.App, 0, len(ids))
	for _, id := range ids {
		a, err := catalog.New(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func TestClassifyLightAppsOffloadable(t *testing.T) {
	params := hub.DefaultParams()
	light, err := catalog.Light(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range light {
		cls, err := Classify(a.Spec(), params)
		if err != nil {
			t.Fatalf("%s: %v", a.Spec().ID, err)
		}
		if !cls.Offloadable {
			t.Errorf("%s not offloadable: %v", a.Spec().ID, cls.Reasons)
		}
	}
}

func TestClassifyHeavyAppGates(t *testing.T) {
	params := hub.DefaultParams()
	heavy := defaultApps(t, apps.SpeechToTxt)[0]
	cls, err := Classify(heavy.Spec(), params)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Offloadable {
		t.Fatal("A11 classified offloadable")
	}
	joined := strings.Join(cls.Reasons, "; ")
	for _, want := range []string{"heavy-weight", "exceeds MCU RAM", "QoS violation"} {
		if !strings.Contains(joined, want) {
			t.Errorf("reasons %q missing %q", joined, want)
		}
	}
}

func TestClassifyMemoryGate(t *testing.T) {
	params := hub.DefaultParams()
	spec := defaultApps(t, apps.JPEGDecoder)[0].Spec()
	params.MCU.ReservedBytes = params.MCU.RAMBytes - 32*1024 // 32 KB usable
	cls, err := Classify(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Offloadable {
		t.Error("A9 offloadable with 32 KB usable RAM")
	}
}

func TestClassifyQoSGate(t *testing.T) {
	params := hub.DefaultParams()
	params.MCU.BaseSlowdown = 4000 // absurdly slow MCU
	spec := defaultApps(t, apps.Heartbeat)[0].Spec()
	cls, err := Classify(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Offloadable {
		t.Error("A8 offloadable on a 4000x-slower MCU")
	}
	if !strings.Contains(strings.Join(cls.Reasons, ";"), "QoS") {
		t.Errorf("reasons = %v, want QoS gate", cls.Reasons)
	}
}

func TestPlanBCOMMixedWorkload(t *testing.T) {
	params := hub.DefaultParams()
	mix := defaultApps(t, apps.SpeechToTxt, apps.DropboxMgr, apps.CoAPServer)
	plan, err := PlanBCOM(mix, params)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme != hub.BCOM {
		t.Errorf("scheme = %v, want BCOM", plan.Scheme)
	}
	if plan.Assign[apps.SpeechToTxt] != hub.Batched {
		t.Errorf("A11 = %v, want Batched", plan.Assign[apps.SpeechToTxt])
	}
	if plan.Assign[apps.DropboxMgr] != hub.Offloaded || plan.Assign[apps.CoAPServer] != hub.Offloaded {
		t.Errorf("light apps = %v/%v, want Offloaded",
			plan.Assign[apps.DropboxMgr], plan.Assign[apps.CoAPServer])
	}
	// The plan must be directly runnable.
	res, err := hub.Run(hub.Config{Apps: mix, Scheme: plan.Scheme, Assign: plan.Assign, Windows: 2})
	if err != nil {
		t.Fatalf("plan not runnable: %v", err)
	}
	if res.QoSViolations != 0 {
		t.Errorf("planned run violated QoS %d times", res.QoSViolations)
	}
}

func TestPlanBCOMAllLightBecomesCOM(t *testing.T) {
	plan, err := PlanBCOM(defaultApps(t, apps.StepCounter, apps.Earthquake), hub.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme != hub.COM {
		t.Errorf("scheme = %v, want COM", plan.Scheme)
	}
}

func TestPlanBCOMAllHeavyBecomesBatching(t *testing.T) {
	plan, err := PlanBCOM(defaultApps(t, apps.SpeechToTxt), hub.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme != hub.Batching {
		t.Errorf("scheme = %v, want Batching", plan.Scheme)
	}
}

func TestPlanBCOMRespectsMCUBudget(t *testing.T) {
	params := hub.DefaultParams()
	params.MCU.BaseSlowdown = 190 // 10x slower MCU: not everything fits
	mix := defaultApps(t, apps.CoAPServer, apps.M2X, apps.Heartbeat, apps.Earthquake)
	plan, err := PlanBCOM(mix, params)
	if err != nil {
		t.Fatal(err)
	}
	offloaded := 0
	var budget float64
	for id, m := range plan.Assign {
		if m == hub.Offloaded {
			offloaded++
			budget += plan.Classifications[id].MCUBusyPerWindow.Seconds()
		}
	}
	if offloaded == len(mix) {
		t.Error("all apps offloaded despite a 190x-slower MCU")
	}
	if budget > 1.0 {
		t.Errorf("offloaded MCU busy %.2fs exceeds the 1s window", budget)
	}
}

func TestPlanBCOMEmpty(t *testing.T) {
	if _, err := PlanBCOM(nil, hub.DefaultParams()); err == nil {
		t.Error("empty plan accepted")
	}
}

// TestEstimateTracksSimulator validates the analytic model against the full
// simulator for the single-app scenarios of Fig. 10.
func TestEstimateTracksSimulator(t *testing.T) {
	params := hub.DefaultParams()
	for _, id := range []apps.ID{apps.StepCounter, apps.CoAPServer, apps.M2X, apps.Heartbeat} {
		a := defaultApps(t, id)[0]
		est, err := Estimate(a.Spec(), params)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		measure := func(scheme hub.Scheme) float64 {
			res, err := hub.Run(hub.Config{
				Apps: defaultApps(t, id), Scheme: scheme, Windows: 3, SkipAppCompute: true,
			})
			if err != nil {
				t.Fatalf("%s %v: %v", id, scheme, err)
			}
			return res.TotalJoules() / 3
		}
		cases := []struct {
			name string
			est  float64
			sim  float64
		}{
			{"baseline", est.BaselineJoules, measure(hub.Baseline)},
			{"batching", est.BatchingJoules, measure(hub.Batching)},
			{"com", est.COMJoules, measure(hub.COM)},
		}
		for _, c := range cases {
			rel := math.Abs(c.est-c.sim) / c.sim
			if rel > 0.20 {
				t.Errorf("%s %s: estimate %.3f J vs sim %.3f J (%.0f%% off)",
					id, c.name, c.est, c.sim, rel*100)
			}
		}
	}
}

func TestEstimateSavingsOrdering(t *testing.T) {
	params := hub.DefaultParams()
	est, err := Estimate(defaultApps(t, apps.StepCounter)[0].Spec(), params)
	if err != nil {
		t.Fatal(err)
	}
	if !(est.COMSaving() > est.BatchingSaving() && est.BatchingSaving() > 0) {
		t.Errorf("savings ordering: batching=%.2f com=%.2f", est.BatchingSaving(), est.COMSaving())
	}
}

func TestBatteryUsableJoules(t *testing.T) {
	b := TypicalPowerBank()
	j, err := b.UsableJoules()
	if err != nil {
		t.Fatal(err)
	}
	// 10 Ah × 5 V × 3600 s × 0.85 derate = 153 kJ.
	if j < 150_000 || j > 156_000 {
		t.Errorf("usable = %.0f J, want ~153 kJ", j)
	}
	bad := Battery{CapacityMAh: 0, Volts: 5}
	if _, err := bad.UsableJoules(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = Battery{CapacityMAh: 100, Volts: 5, DerateFraction: 2}
	if _, err := bad.UsableJoules(); err == nil {
		t.Error("derate > 1 accepted")
	}
}

func TestLifetimeOrdering(t *testing.T) {
	spec := defaultApps(t, apps.StepCounter)[0].Spec()
	life, err := Lifetime(spec, hub.DefaultParams(), TypicalPowerBank())
	if err != nil {
		t.Fatal(err)
	}
	if !(life.COM > life.Batching && life.Batching > life.Baseline) {
		t.Errorf("lifetime ordering: base=%v bat=%v com=%v", life.Baseline, life.Batching, life.COM)
	}
	// Sanity magnitudes: a 153 kJ pack at ~2.8 W baseline lasts ~15 h; COM
	// stretches that several-fold.
	if life.Baseline < 8*time.Hour || life.Baseline > 30*time.Hour {
		t.Errorf("baseline lifetime = %v, want ~15h", life.Baseline)
	}
	if life.COM < 2*life.Baseline {
		t.Errorf("COM lifetime %v not at least 2x baseline %v", life.COM, life.Baseline)
	}
}

func TestLifetimeBadBattery(t *testing.T) {
	spec := defaultApps(t, apps.StepCounter)[0].Spec()
	if _, err := Lifetime(spec, hub.DefaultParams(), Battery{}); err == nil {
		t.Error("zero battery accepted")
	}
}

// TestPlanBCOMRecoversOversubscribedMix: the ten-app concurrent mix
// oversubscribes both the CPU's interrupt path and the link under Baseline
// and even under Batching (its raw data volume exceeds the link bandwidth).
// The planner moves the heaviest interrupters onto the MCU until its budget
// fills; the data they would have shipped never crosses the link, restoring
// feasibility.
func TestPlanBCOMRecoversOversubscribedMix(t *testing.T) {
	mix, err := catalog.Light(1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanBCOM(mix, hub.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	offloaded, batched := 0, 0
	for _, m := range plan.Assign {
		switch m {
		case hub.Offloaded:
			offloaded++
		case hub.Batched:
			batched++
		}
	}
	if offloaded == 0 {
		t.Fatal("planner offloaded nothing")
	}
	if batched == 0 {
		t.Fatal("planner fit all ten apps on the MCU; its time budget should not allow that")
	}
	cfg := hub.Config{
		Apps: mix, Scheme: plan.Scheme, Assign: plan.Assign, Windows: 3, SkipAppCompute: true,
	}
	if plan.Scheme != hub.BCOM {
		t.Fatalf("scheme = %v, want BCOM for a mixed partition", plan.Scheme)
	}
	res, err := hub.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := hub.Run(hub.Config{Apps: mix, Scheme: hub.Baseline, Windows: 3, SkipAppCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.QoSViolations >= base.QoSViolations {
		t.Errorf("planned run violations %d not below baseline %d",
			res.QoSViolations, base.QoSViolations)
	}
	if res.TotalJoules() >= base.TotalJoules() {
		t.Error("planned run did not save energy")
	}
}
