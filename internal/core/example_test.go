package core_test

import (
	"fmt"
	"log"

	"iothub/internal/apps"
	"iothub/internal/apps/dropboxmgr"
	"iothub/internal/apps/speech2text"
	"iothub/internal/core"
	"iothub/internal/hub"
)

// ExamplePlanBCOM partitions a heavy/light mix the way the paper's §IV-E3
// scenario does: speech-to-text stays on the CPU (batched), the Dropbox
// manager offloads to the MCU.
func ExamplePlanBCOM() {
	heavy, err := speech2text.New(1)
	if err != nil {
		log.Fatal(err)
	}
	light, err := dropboxmgr.New(1)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.PlanBCOM([]apps.App{heavy, light}, hub.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scheme:", plan.Scheme)
	fmt.Println("A11:", plan.Assign[apps.SpeechToTxt])
	fmt.Println("A6:", plan.Assign[apps.DropboxMgr])
	fmt.Println("A11 offloadable:", plan.Classifications[apps.SpeechToTxt].Offloadable)
	// Output:
	// scheme: BCOM
	// A11: Batched
	// A6: Offloaded
	// A11 offloadable: false
}

// ExampleClassify shows the offload gate analysis for a light workload.
func ExampleClassify() {
	light, err := dropboxmgr.New(1)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := core.Classify(light.Spec(), hub.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offloadable:", cls.Offloadable)
	fmt.Println("batch bytes per window:", cls.BatchBytesPerWindow)
	// Output:
	// offloadable: true
	// batch bytes per window: 12000
}
