package power

import (
	"fmt"
	"time"
)

// DefaultLedgerHz is the ledger settle rate when a Supply does not pick its
// own: 200 Hz of virtual time (a 5 ms step), fine enough that a window's
// worth of demand cannot hide a zero crossing for long, coarse enough that
// the ledger stays a rounding error in the event count.
const DefaultLedgerHz = 200

// Supply couples a Battery with a harvest trace and a ledger rate: the
// complete power configuration of one hub run. The zero value (and a nil
// pointer wherever Supply appears as an override) means mains power — the
// byte-identical asymptote the golden corpus pins.
//
// Supply is comparable, which the fleet grid's zero-value identity check
// relies on.
type Supply struct {
	// Battery is the energy store; its zero value disarms the whole Supply.
	Battery Battery `json:"battery"`
	// Harvest is the income trace in ParseTrace text form ("" = none).
	Harvest string `json:"harvest,omitempty"`
	// LedgerHz is the settle rate of the supply/demand ledger in Hz of
	// virtual time (0 = DefaultLedgerHz). SoC thresholds and the brownout
	// zero crossing are detected at this resolution.
	LedgerHz float64 `json:"ledgerHz,omitempty"`
}

// Armed reports whether the supply participates in a run.
func (s *Supply) Armed() bool { return s != nil && s.Battery.Armed() }

// LedgerPeriod is the interval between ledger settles.
func (s *Supply) LedgerPeriod() time.Duration {
	hz := s.LedgerHz
	if hz <= 0 {
		hz = DefaultLedgerHz
	}
	return time.Duration(float64(time.Second) / hz)
}

// Validate checks the whole supply, including that the harvest trace parses.
func (s *Supply) Validate() error {
	if s == nil {
		return nil
	}
	if err := s.Battery.Validate(); err != nil {
		return err
	}
	if s.LedgerHz < 0 {
		return fmt.Errorf("power: ledger rate %v Hz, want >= 0", s.LedgerHz)
	}
	if !s.Battery.Armed() && (s.Harvest != "" || s.LedgerHz != 0) {
		return fmt.Errorf("power: harvest/ledger configured without a battery")
	}
	if s.Harvest != "" {
		if _, err := ParseTrace(s.Harvest); err != nil {
			return err
		}
	}
	return nil
}

// Trace parses the supply's harvest schedule (nil trace when none is set).
func (s *Supply) Trace() (*Trace, error) {
	if s == nil || s.Harvest == "" {
		return &Trace{}, nil
	}
	return ParseTrace(s.Harvest)
}

// PresetNames lists the harvest presets Preset accepts, in the order the
// CLI documents them.
func PresetNames() []string { return []string{"solar", "rf", "office"} }

// Preset returns a named harvest trace in ParseTrace text form:
//
//	solar   a 2 s "day" of clipped-sine panel income peaking at 1.6 W
//	rf      a 0.6 W RF charger burst 120 ms out of every 400 ms
//	office  dim constant indoor light plus a phase-shifted solar window
//
// Unknown names are an error listing the valid presets, mirroring
// obs.Preset for meters.
func Preset(name string) (string, error) {
	switch name {
	case "solar":
		return "solar:peak=1.6,period=2s", nil
	case "rf":
		return "rf:w=0.6,period=400ms,burst=120ms", nil
	case "office":
		return "const:w=0.12; solar:peak=0.9,period=4s,phase=1s", nil
	default:
		return "", fmt.Errorf("power: unknown harvest preset %q (want solar, rf, or office)", name)
	}
}
