package power

import (
	"testing"
	"time"
)

// FuzzParseTrace: arbitrary text must never panic the parser, and any trace
// it accepts must compile into a well-formed step list (strictly ordered,
// coalesced, non-negative levels) for several horizons — the properties the
// hub's ledger scheduling depends on.
func FuzzParseTrace(f *testing.F) {
	f.Add("solar:peak=1.6,period=2s")
	f.Add("const:w=0.12; solar:peak=0.9,period=4s,phase=1s")
	f.Add("rf:w=0.6,period=400ms,burst=120ms")
	f.Add("const:w=0.5,at=1s; rf:w=1,period=2s,burst=500ms; solar:peak=2,period=3s,slots=16")
	f.Add("; ;;")
	f.Add("const:w=1e308; const:w=1e308")
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := ParseTrace(spec)
		if err != nil {
			return
		}
		for _, horizon := range []time.Duration{0, time.Millisecond, 3 * time.Second} {
			steps := tr.AppendSteps(nil, horizon)
			if len(steps) == 0 {
				t.Fatalf("accepted trace %q compiled to no steps", spec)
			}
			if steps[0].At != 0 {
				t.Fatalf("first step of %q at %v, want 0", spec, steps[0].At)
			}
			for i, s := range steps {
				if s.Watts < 0 {
					t.Fatalf("negative level %v in %q", s, spec)
				}
				if i > 0 && s.At <= steps[i-1].At {
					t.Fatalf("unordered steps %v in %q", steps, spec)
				}
				if i > 0 && s.Watts == steps[i-1].Watts {
					t.Fatalf("uncoalesced steps %v in %q", steps, spec)
				}
			}
			if tr.MeanWatts(horizon) < 0 {
				t.Fatalf("negative mean for %q", spec)
			}
		}
	})
}
