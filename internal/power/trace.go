package power

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one harvest rule shape.
type Kind int

const (
	// Const contributes a constant wattage from a start instant on.
	Const Kind = iota
	// Solar contributes a repeating clipped-sine day/night cycle,
	// discretized into piecewise-constant slots so the compiled trace is
	// a finite list of DES events.
	Solar
	// RF contributes a pulsed source: Watts during a burst at the top of
	// every period, zero otherwise.
	RF
)

// Rule is one parsed harvest contribution. A trace's income at time t is the
// sum over its rules — profiles compose additively, like light plus an RF
// charger in the same room.
type Rule struct {
	Kind Kind
	// At delays a Const rule's onset (Solar/RF use Phase instead).
	At time.Duration
	// Watts is the contribution's level: the constant level (Const), the
	// peak of the clipped sine (Solar), or the burst level (RF).
	Watts float64
	// Period is the repeat interval (Solar day length, RF pulse interval).
	Period time.Duration
	// Phase shifts the repeating pattern earlier in time.
	Phase time.Duration
	// Burst is the RF pulse width.
	Burst time.Duration
	// Slots is the Solar discretization (slots per period, default 8).
	Slots int
}

// Step is one compiled trace event: total harvest power becomes Watts at At.
type Step struct {
	At    time.Duration
	Watts float64
}

// Trace is a parsed harvest schedule. The zero value harvests nothing.
type Trace struct {
	Rules []Rule
}

// ParseTrace builds a Trace from the compact text form: a semicolon-separated
// list of rules
//
//	<kind>:param=value[,param=value...]
//
// with kinds const, solar, rf, and parameters
//
//	w=F           contribution level in watts (const/rf; solar uses peak=)
//	peak=F        solar peak watts at high noon
//	at=DUR        const onset delay (Go duration syntax)
//	period=DUR    repeat interval (solar day length, rf pulse interval)
//	phase=DUR     shift the repeating pattern earlier in time
//	burst=DUR     rf pulse width (must be <= period)
//	slots=N       solar slots per period (piecewise-constant resolution)
//
// Examples:
//
//	solar:peak=1.2,period=2s
//	const:w=0.2; rf:w=0.6,period=400ms,burst=120ms
//
// A malformed rule is reported with its 1-based index and raw text, so one
// bad rule in a long trace is easy to locate — the same contract as
// faults.ParseSchedule.
func ParseTrace(spec string) (*Trace, error) {
	t := &Trace{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		rule, err := parseRule(item)
		if err != nil {
			return nil, fmt.Errorf("power: rule %d %q: %w", len(t.Rules)+1, item, err)
		}
		t.Rules = append(t.Rules, rule)
	}
	return t, nil
}

func parseKind(name string) (Kind, error) {
	switch name {
	case "const":
		return Const, nil
	case "solar":
		return Solar, nil
	case "rf":
		return RF, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", name)
	}
}

func parseRule(item string) (Rule, error) {
	name, params, _ := strings.Cut(item, ":")
	kind, err := parseKind(strings.TrimSpace(name))
	if err != nil {
		return Rule{}, err
	}
	rule := Rule{Kind: kind}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Rule{}, fmt.Errorf("parameter %q is not key=value", kv)
			}
			if err := applyParam(&rule, strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return Rule{}, err
			}
		}
	}
	if err := rule.validate(); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func applyParam(rule *Rule, key, val string) error {
	switch key {
	case "w", "peak":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return fmt.Errorf("%s=%q, want watts >= 0", key, val)
		}
		rule.Watts = f
	case "at":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("at=%q, want non-negative duration", val)
		}
		rule.At = d
	case "period":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("period=%q, want positive duration", val)
		}
		rule.Period = d
	case "phase":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("phase=%q, want non-negative duration", val)
		}
		rule.Phase = d
	case "burst":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("burst=%q, want positive duration", val)
		}
		rule.Burst = d
	case "slots":
		n, err := strconv.Atoi(val)
		if err != nil || n < 2 || n > 1024 {
			return fmt.Errorf("slots=%q, want integer in [2, 1024]", val)
		}
		rule.Slots = n
	default:
		return fmt.Errorf("unknown parameter %q", key)
	}
	return nil
}

// minGranularity bounds how fine a repeating pattern may be: it caps the
// compiled step count (a trace is scheduled as real DES events) at ~2k
// level changes per rule per virtual second.
const minGranularity = 500 * time.Microsecond

func (r Rule) validate() error {
	switch r.Kind {
	case Const:
		if r.Period != 0 || r.Phase != 0 || r.Burst != 0 || r.Slots != 0 {
			return fmt.Errorf("const takes only w= and at=")
		}
	case Solar:
		if r.Period <= 0 {
			return fmt.Errorf("solar needs period=")
		}
		if r.At != 0 || r.Burst != 0 {
			return fmt.Errorf("solar takes peak=, period=, phase=, slots=")
		}
		if slot := r.Period / time.Duration(r.slots()); slot < minGranularity {
			return fmt.Errorf("period %v / %d slots finer than %v", r.Period, r.slots(), minGranularity)
		}
	case RF:
		if r.Period <= 0 || r.Burst <= 0 {
			return fmt.Errorf("rf needs period= and burst=")
		}
		if r.Burst > r.Period {
			return fmt.Errorf("burst %v exceeds period %v", r.Burst, r.Period)
		}
		if r.At != 0 || r.Slots != 0 {
			return fmt.Errorf("rf takes w=, period=, burst=, phase=")
		}
		if r.Period < minGranularity || r.Burst < minGranularity {
			return fmt.Errorf("period/burst finer than %v", minGranularity)
		}
	}
	return nil
}

// slots resolves the Solar discretization default.
func (r Rule) slots() int {
	if r.Slots > 0 {
		return r.Slots
	}
	return 8
}

// wattsAt evaluates one rule's contribution at instant t (piecewise-constant
// everywhere, by construction).
func (r Rule) wattsAt(t time.Duration) float64 {
	switch r.Kind {
	case Const:
		if t >= r.At {
			return r.Watts
		}
		return 0
	case Solar:
		slot := r.Period / time.Duration(r.slots())
		if slot <= 0 {
			return 0
		}
		pos := (t + r.Phase) % r.Period
		// Evaluate the clipped sine at the slot midpoint, so the
		// piecewise-constant trace brackets the continuous curve.
		mid := (float64(pos/slot) + 0.5) / float64(r.slots())
		if v := r.Watts * math.Sin(2*math.Pi*mid); v > 0 {
			return v
		}
		return 0
	case RF:
		if (t+r.Phase)%r.Period < r.Burst {
			return r.Watts
		}
		return 0
	}
	return 0
}

// boundaries appends every instant in (0, horizon] where the rule's
// contribution may change level.
func (r Rule) boundaries(dst []time.Duration, horizon time.Duration) []time.Duration {
	switch r.Kind {
	case Const:
		if r.At > 0 && r.At <= horizon {
			dst = append(dst, r.At)
		}
	case Solar:
		slot := r.Period / time.Duration(r.slots())
		if slot <= 0 {
			return dst
		}
		for t := -(r.Phase % slot); t <= horizon; t += slot {
			if t > 0 {
				dst = append(dst, t)
			}
		}
	case RF:
		for start := -(r.Phase % r.Period); start <= horizon; start += r.Period {
			if start > 0 {
				dst = append(dst, start)
			}
			if end := start + r.Burst; end > 0 && end <= horizon {
				dst = append(dst, end)
			}
		}
	}
	return dst
}

// AppendSteps compiles the trace into the level changes within [0, horizon],
// appended to dst (reuse the slice across runs to stay allocation-steady).
// The first step is always At 0 with the trace's initial level; consecutive
// equal levels are coalesced. Beyond the horizon the last level persists —
// the hub's ledger relies on that to model recharge during a brownout that
// outlives the nominal run.
func (t *Trace) AppendSteps(dst []Step, horizon time.Duration) []Step {
	if t == nil || len(t.Rules) == 0 {
		return append(dst, Step{At: 0, Watts: 0})
	}
	var bounds []time.Duration
	bounds = append(bounds, 0)
	for _, r := range t.Rules {
		bounds = r.boundaries(bounds, horizon)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	last := math.NaN()
	for i, at := range bounds {
		if i > 0 && at == bounds[i-1] {
			continue
		}
		var w float64
		for _, r := range t.Rules {
			w += r.wattsAt(at)
		}
		if w == last {
			continue
		}
		dst = append(dst, Step{At: at, Watts: w})
		last = w
	}
	return dst
}

// MeanWatts is the trace's average income over [0, horizon] — the analytic
// handle experiments use to reason about power-neutral operation.
func (t *Trace) MeanWatts(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	steps := t.AppendSteps(nil, horizon)
	var joules float64
	for i, s := range steps {
		end := horizon
		if i+1 < len(steps) {
			end = steps[i+1].At
		}
		if end > s.At {
			joules += s.Watts * (end - s.At).Seconds()
		}
	}
	return joules / horizon.Seconds()
}
