package power

import (
	"strings"
	"testing"
	"time"
)

func TestUsableJoules(t *testing.T) {
	b := Battery{CapacityMAh: 10_000, Volts: 5}
	j, err := b.UsableJoules()
	if err != nil {
		t.Fatal(err)
	}
	// 10 Ah × 5 V × 3600 s × 0.85 derate = 153 kJ.
	if j < 150_000 || j > 156_000 {
		t.Errorf("usable = %.0f J, want ~153 kJ", j)
	}
	if _, err := (Battery{Volts: 5}).UsableJoules(); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := (Battery{CapacityMAh: 100, Volts: 5, DerateFraction: 2}).UsableJoules(); err == nil {
		t.Error("derate > 1 accepted")
	}
}

func TestBatteryValidate(t *testing.T) {
	if err := (Battery{}).Validate(); err != nil {
		t.Errorf("zero battery: %v", err)
	}
	if err := (Battery{CapacityMAh: 100, Volts: 5, LeakageW: -1}).Validate(); err == nil {
		t.Error("negative leakage accepted")
	}
	if err := (Battery{CapacityMAh: 100, Volts: 5, InitialSoC: 1.5}).Validate(); err == nil {
		t.Error("initial SoC > 1 accepted")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		spec string
		want []string // substrings the error must carry
	}{
		{"tidal:w=1", []string{"rule 1", `"tidal:w=1"`, "unknown kind"}},
		{"const:w=1; solar:peak=1", []string{"rule 2", `"solar:peak=1"`, "needs period="}},
		{"const:w", []string{"rule 1", "not key=value"}},
		{"const:w=-2", []string{"rule 1", "want watts >= 0"}},
		{"rf:w=1,period=100ms,burst=200ms", []string{"rule 1", "burst 200ms exceeds period"}},
		{"solar:peak=1,period=1s,slots=1", []string{"slots"}},
		{"const:w=1,volume=11", []string{`unknown parameter "volume"`}},
	}
	for _, c := range cases {
		_, err := ParseTrace(c.spec)
		if err == nil {
			t.Errorf("%q: accepted", c.spec)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%q: error %q missing %q", c.spec, err, w)
			}
		}
	}
}

func TestTraceSteps(t *testing.T) {
	tr, err := ParseTrace("const:w=0.5,at=1s; rf:w=1,period=2s,burst=500ms")
	if err != nil {
		t.Fatal(err)
	}
	steps := tr.AppendSteps(nil, 4*time.Second)
	// t=0: rf burst (1 W); 500ms: 0; 1s: const joins (0.5); 2s: burst again
	// (1.5); 2.5s: 0.5; 4s: burst (1.5).
	want := []Step{
		{0, 1}, {500 * time.Millisecond, 0}, {time.Second, 0.5},
		{2 * time.Second, 1.5}, {2500 * time.Millisecond, 0.5}, {4 * time.Second, 1.5},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %v, want %v", i, steps[i], want[i])
		}
	}
}

func TestTraceDeterministicAndCoalesced(t *testing.T) {
	tr, err := ParseTrace("solar:peak=1.2,period=2s,phase=300ms; const:w=0.1")
	if err != nil {
		t.Fatal(err)
	}
	a := tr.AppendSteps(nil, 6*time.Second)
	b := tr.AppendSteps(nil, 6*time.Second)
	if len(a) != len(b) {
		t.Fatalf("recompile changed step count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recompile changed step %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At <= a[i-1].At {
			t.Fatalf("steps not strictly ordered at %d: %v", i, a)
		}
		if a[i].Watts == a[i-1].Watts {
			t.Fatalf("equal consecutive levels not coalesced at %d: %v", i, a)
		}
	}
}

func TestTraceMeanWatts(t *testing.T) {
	tr, err := ParseTrace("const:w=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if m := tr.MeanWatts(3 * time.Second); m < 0.2499 || m > 0.2501 {
		t.Errorf("mean = %v, want 0.25", m)
	}
	// A full RF period averages w × duty.
	tr, err = ParseTrace("rf:w=1,period=1s,burst=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if m := tr.MeanWatts(4 * time.Second); m < 0.2499 || m > 0.2501 {
		t.Errorf("rf mean = %v, want 0.25", m)
	}
}

func TestSupplyValidate(t *testing.T) {
	var nilSupply *Supply
	if err := nilSupply.Validate(); err != nil {
		t.Errorf("nil supply: %v", err)
	}
	if nilSupply.Armed() {
		t.Error("nil supply armed")
	}
	s := &Supply{Battery: Battery{CapacityMAh: 200, Volts: 3.7}, Harvest: "solar:peak=1,period=2s"}
	if err := s.Validate(); err != nil {
		t.Errorf("good supply: %v", err)
	}
	if !s.Armed() {
		t.Error("good supply not armed")
	}
	if err := (&Supply{Harvest: "const:w=1"}).Validate(); err == nil {
		t.Error("harvest without battery accepted")
	}
	bad := &Supply{Battery: Battery{CapacityMAh: 200, Volts: 3.7}, Harvest: "nope:w=1"}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("bad harvest: %v", err)
	}
}

func TestPreset(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := ParseTrace(spec); err != nil {
			t.Errorf("%s preset does not parse: %v", name, err)
		}
	}
	_, err := Preset("tidal")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	for _, name := range PresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("preset error %q does not list %q", err, name)
		}
	}
}
