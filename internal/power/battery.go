// Package power models the supply side of the hub's energy story: a finite
// battery (capacity, voltage, usable-joules derate, leakage) and
// deterministic harvester traces — solar and RF profiles over virtual time.
// The demand side stays where it always was, in internal/energy's tracks;
// the hub's ledger (internal/hub power runtime, DESIGN.md §14) couples the
// two so state of charge evolves alongside consumption as real DES events.
//
// Everything here is pure data + arithmetic: no scheduler, no clock, no
// randomness. A trace compiled twice for the same horizon yields the same
// steps, which is what makes battery-armed runs seeded-replay identical.
package power

import "fmt"

// DefaultDerate discounts rated capacity for aging/temperature when the
// battery does not specify its own fraction — the same 0.85 the post-hoc
// core.Lifetime estimate has always used (core now delegates here, so the
// live ledger and the estimate can never disagree).
const DefaultDerate = 0.85

// Battery is the energy store powering a hub run. The zero value is "no
// battery": mains power, infinite budget — the asymptote every pre-power
// result in this repo was produced under.
type Battery struct {
	// CapacityMAh is the rated capacity in milliamp-hours. Zero disarms
	// the battery entirely.
	CapacityMAh float64 `json:"capacityMah,omitempty"`
	// Volts is the nominal pack voltage.
	Volts float64 `json:"volts,omitempty"`
	// DerateFraction discounts usable capacity for aging/temperature
	// (0 = use DefaultDerate).
	DerateFraction float64 `json:"derate,omitempty"`
	// LeakageW is the pack's self-discharge draw, drained whether or not
	// the hub does anything. It is metered on a dedicated "battery" energy
	// track so PerComponent splits it from device demand.
	LeakageW float64 `json:"leakageW,omitempty"`
	// InitialSoC is the starting state of charge as a fraction of usable
	// joules (0 = start full).
	InitialSoC float64 `json:"initialSoc,omitempty"`
}

// Armed reports whether the battery participates in a run at all.
func (b Battery) Armed() bool { return b.CapacityMAh > 0 }

// UsableJoules is the battery's deliverable energy: capacity × voltage ×
// derate. This is the one place that math lives; core.Battery wraps it.
func (b Battery) UsableJoules() (float64, error) {
	if b.CapacityMAh <= 0 || b.Volts <= 0 {
		return 0, fmt.Errorf("power: battery %v mAh @ %v V", b.CapacityMAh, b.Volts)
	}
	derate := b.DerateFraction
	if derate == 0 {
		derate = DefaultDerate
	}
	if derate <= 0 || derate > 1 {
		return 0, fmt.Errorf("power: derate %v outside (0, 1]", derate)
	}
	return b.CapacityMAh / 1000 * 3600 * b.Volts * derate, nil
}

// Validate checks an armed battery's calibration; the zero value passes.
func (b Battery) Validate() error {
	if !b.Armed() {
		return nil
	}
	if _, err := b.UsableJoules(); err != nil {
		return err
	}
	if b.LeakageW < 0 {
		return fmt.Errorf("power: leakage %v W, want >= 0", b.LeakageW)
	}
	if b.InitialSoC < 0 || b.InitialSoC > 1 {
		return fmt.Errorf("power: initial SoC %v outside [0, 1]", b.InitialSoC)
	}
	return nil
}
