package speech

import (
	"math"
	"testing"

	"iothub/internal/sensor"
)

const rate = 8000

// wordPCM renders one spoken word as PCM via the sensor generator.
func wordPCM(t *testing.T, w sensor.AudioWord, n int) []float64 {
	t.Helper()
	gen := sensor.NewAudioSpeech(1, rate, n, 0, w)
	pcm := make([]float64, n)
	for i := range pcm {
		pcm[i] = gen.PCMAt(i)
	}
	return pcm
}

func templates(t *testing.T, f *Frontend) []Template {
	t.Helper()
	words := []sensor.AudioWord{sensor.WordYes, sensor.WordNo, sensor.WordStop, sensor.WordGo}
	out := make([]Template, 0, len(words))
	for _, w := range words {
		feats, err := f.Features(wordPCM(t, w, rate/4))
		if err != nil {
			t.Fatalf("template features: %v", err)
		}
		out = append(out, Template{Word: w.String(), Features: feats})
	}
	return out
}

func TestNewFrontendValidation(t *testing.T) {
	if _, err := NewFrontend(0); err == nil {
		t.Error("zero rate accepted")
	}
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	if f.FrameLen&(f.FrameLen-1) != 0 {
		t.Errorf("FrameLen %d not power of two", f.FrameLen)
	}
	if f.FrameLen < 128 || f.FrameLen > 1024 {
		t.Errorf("FrameLen %d unreasonable for 8 kHz", f.FrameLen)
	}
}

func TestFeaturesShape(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	pcm := wordPCM(t, sensor.WordYes, rate/2)
	feats, err := f.Features(pcm)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := (len(pcm)-f.FrameLen)/f.Hop + 1
	if len(feats) != wantFrames {
		t.Errorf("frames = %d, want %d", len(feats), wantFrames)
	}
	for _, fr := range feats {
		if len(fr) != f.NumCoeffs {
			t.Fatalf("coeffs = %d, want %d", len(fr), f.NumCoeffs)
		}
		for _, c := range fr {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatal("non-finite MFCC coefficient")
			}
		}
	}
	// Shorter than one frame: no features, no error.
	short, err := f.Features(pcm[:10])
	if err != nil || len(short) != 0 {
		t.Errorf("short input: %v, %d frames", err, len(short))
	}
}

func TestFeaturesDistinguishWords(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	yes, err := f.Features(wordPCM(t, sensor.WordYes, rate/4))
	if err != nil {
		t.Fatal(err)
	}
	yes2, err := f.Features(wordPCM(t, sensor.WordYes, rate/4))
	if err != nil {
		t.Fatal(err)
	}
	no, err := f.Features(wordPCM(t, sensor.WordNo, rate/4))
	if err != nil {
		t.Fatal(err)
	}
	same, err := DTW(yes, yes2)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := DTW(yes, no)
	if err != nil {
		t.Fatal(err)
	}
	if same >= diff {
		t.Errorf("DTW(yes,yes)=%.3f not below DTW(yes,no)=%.3f", same, diff)
	}
}

func TestDTWProperties(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Features(wordPCM(t, sensor.WordStop, rate/4))
	if err != nil {
		t.Fatal(err)
	}
	self, err := DTW(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if self > 1e-9 {
		t.Errorf("DTW(a,a) = %v, want 0", self)
	}
	if _, err := DTW(nil, a); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestNewRecognizerValidation(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecognizer(nil, templates(t, f)); err == nil {
		t.Error("nil frontend accepted")
	}
	if _, err := NewRecognizer(f, nil); err == nil {
		t.Error("no templates accepted")
	}
	if _, err := NewRecognizer(f, []Template{{Word: "x"}}); err == nil {
		t.Error("empty template accepted")
	}
}

func TestDecodeTranscribesSequence(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecognizer(f, templates(t, f))
	if err != nil {
		t.Fatal(err)
	}
	utterance := []sensor.AudioWord{sensor.WordYes, sensor.WordStop, sensor.WordGo}
	gen := sensor.NewAudioSpeech(3, rate, rate/4, rate/4, utterance...)
	total := len(utterance) * (rate / 4 * 2)
	pcm := make([]float64, total)
	for i := range pcm {
		pcm[i] = gen.PCMAt(i)
	}
	words, err := rec.Decode(pcm)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(words) != len(utterance) {
		t.Fatalf("decoded %d words (%v), want %d", len(words), words, len(utterance))
	}
	for i, w := range utterance {
		if words[i] != w.String() {
			t.Errorf("word %d = %q, want %q", i, words[i], w)
		}
	}
}

func TestDecodeSilenceYieldsNothing(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecognizer(f, templates(t, f))
	if err != nil {
		t.Fatal(err)
	}
	words, err := rec.Decode(make([]float64, rate))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(words) != 0 {
		t.Errorf("decoded %v from silence", words)
	}
}

func TestCMNZeroesCoefficientMeans(t *testing.T) {
	feats := [][]float64{{1, 10}, {3, 20}, {5, 30}}
	out := CMN(feats)
	for c := 0; c < 2; c++ {
		var sum float64
		for _, f := range out {
			sum += f[c]
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("coefficient %d mean = %v, want 0", c, sum/3)
		}
	}
	if CMN(nil) != nil {
		t.Error("empty input not nil")
	}
	// Originals untouched.
	if feats[0][0] != 1 {
		t.Error("CMN mutated its input")
	}
}

func TestWithDeltasShape(t *testing.T) {
	feats := [][]float64{{0}, {1}, {2}, {3}}
	out, err := WithDeltas(feats, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || len(out[0]) != 2 {
		t.Fatalf("shape = %dx%d, want 4x2", len(out), len(out[0]))
	}
	// A linear ramp has constant positive deltas in the interior.
	if out[1][1] <= 0 || out[2][1] <= 0 {
		t.Errorf("ramp deltas = %v, %v, want positive", out[1][1], out[2][1])
	}
	if _, err := WithDeltas(feats, 0); err == nil {
		t.Error("zero width accepted")
	}
	empty, err := WithDeltas(nil, 2)
	if err != nil || empty != nil {
		t.Errorf("empty input: %v, %v", empty, err)
	}
}

func TestEnhancedRecognizerStillDecodes(t *testing.T) {
	f, err := NewFrontend(rate)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecognizer(f, templates(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WithEnhancedFeatures(); err != nil {
		t.Fatal(err)
	}
	utterance := []sensor.AudioWord{sensor.WordYes, sensor.WordNo}
	gen := sensor.NewAudioSpeech(3, rate, rate/4, rate/4, utterance...)
	pcm := make([]float64, len(utterance)*rate/2)
	for i := range pcm {
		pcm[i] = gen.PCMAt(i)
	}
	words, err := rec.Decode(pcm)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 || words[0] != "yes" || words[1] != "no" {
		t.Errorf("enhanced decode = %v", words)
	}
}
