package speech

import (
	"testing"

	"iothub/internal/sensor"
)

func benchPCM(b *testing.B, n int) []float64 {
	b.Helper()
	gen := sensor.NewAudioSpeech(1, rate, n, 0, sensor.WordYes)
	pcm := make([]float64, n)
	for i := range pcm {
		pcm[i] = gen.PCMAt(i)
	}
	return pcm
}

// BenchmarkMFCCFrontend measures the per-second feature-extraction cost —
// the front half of A11's per-window computation.
func BenchmarkMFCCFrontend(b *testing.B) {
	f, err := NewFrontend(rate)
	if err != nil {
		b.Fatal(err)
	}
	pcm := benchPCM(b, rate)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Features(pcm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTWMatch measures one template comparison — the back half.
func BenchmarkDTWMatch(b *testing.B) {
	f, err := NewFrontend(rate)
	if err != nil {
		b.Fatal(err)
	}
	a, err := f.Features(benchPCM(b, rate/4))
	if err != nil {
		b.Fatal(err)
	}
	c, err := f.Features(benchPCM(b, rate/4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTW(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
