package speech

import "fmt"

// CMN applies cepstral mean normalization: subtracting each coefficient's
// utterance mean removes stationary channel coloration (microphone and
// room response), a standard robustness step in ASR front-ends.
func CMN(features [][]float64) [][]float64 {
	if len(features) == 0 {
		return nil
	}
	dim := len(features[0])
	means := make([]float64, dim)
	for _, f := range features {
		for i := 0; i < dim && i < len(f); i++ {
			means[i] += f[i]
		}
	}
	for i := range means {
		means[i] /= float64(len(features))
	}
	out := make([][]float64, len(features))
	for j, f := range features {
		row := make([]float64, len(f))
		for i := range f {
			if i < dim {
				row[i] = f[i] - means[i]
			} else {
				row[i] = f[i]
			}
		}
		out[j] = row
	}
	return out
}

// WithDeltas appends first-order regression deltas to each frame, doubling
// its dimensionality: static coefficients capture the spectral shape, deltas
// its trajectory — the discriminative cue for transitions between phones.
// The regression window spans ±width frames (standard width 2).
func WithDeltas(features [][]float64, width int) ([][]float64, error) {
	if width < 1 {
		return nil, fmt.Errorf("speech: delta width %d", width)
	}
	n := len(features)
	if n == 0 {
		return nil, nil
	}
	dim := len(features[0])
	var norm float64
	for d := 1; d <= width; d++ {
		norm += 2 * float64(d*d)
	}
	out := make([][]float64, n)
	clamp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	for j := range features {
		row := make([]float64, 0, 2*dim)
		row = append(row, features[j]...)
		for c := 0; c < dim; c++ {
			var num float64
			for d := 1; d <= width; d++ {
				num += float64(d) * (at(features, clamp(j+d), c) - at(features, clamp(j-d), c))
			}
			row = append(row, num/norm)
		}
		out[j] = row
	}
	return out, nil
}

func at(features [][]float64, j, c int) float64 {
	if c < len(features[j]) {
		return features[j][c]
	}
	return 0
}

// Enhance applies the full robustness pipeline (CMN then deltas) used when a
// Recognizer is created with WithEnhancedFeatures.
func Enhance(features [][]float64) ([][]float64, error) {
	return WithDeltas(CMN(features), 2)
}

// WithEnhancedFeatures switches the recognizer to CMN + delta features for
// both templates and inputs. Call before the first Decode; the templates are
// re-derived immediately.
func (r *Recognizer) WithEnhancedFeatures() error {
	for i := range r.templates {
		enhanced, err := Enhance(r.templates[i].Features)
		if err != nil {
			return err
		}
		r.templates[i].Features = enhanced
	}
	r.enhance = true
	return nil
}
