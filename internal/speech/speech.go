// Package speech implements the keyword-spotting pipeline that stands in for
// PocketSphinx in the A11 (speech-to-text) workload: an MFCC front-end over
// framed PCM audio and a dynamic-time-warping (DTW) matcher against word
// templates, with energy-based utterance segmentation.
//
// The real PocketSphinx model is a closed acoustic model with a ~1.4 GB
// working set; this substrate preserves the *system* behaviour that matters
// to the paper — a compute- and memory-heavy decode over sound-sensor frames
// that cannot fit an MCU — while producing verifiable transcripts on the
// synthetic audio of package sensor.
package speech

import (
	"errors"
	"fmt"
	"math"

	"iothub/internal/dsp"
)

// Frontend converts PCM samples into MFCC feature frames.
type Frontend struct {
	SampleRate float64
	FrameLen   int // samples per analysis frame (power of two)
	Hop        int // samples between frame starts
	NumFilters int // mel filterbank size
	NumCoeffs  int // cepstral coefficients kept
}

// NewFrontend returns a front-end with standard parameters for the given
// sample rate: 32 ms power-of-two frames, 50% hop, 20 filters, 12 coeffs.
func NewFrontend(sampleRate float64) (*Frontend, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("speech: sample rate %v", sampleRate)
	}
	frame := 1
	for float64(frame) < sampleRate*0.032 {
		frame <<= 1
	}
	return &Frontend{
		SampleRate: sampleRate,
		FrameLen:   frame,
		Hop:        frame / 2,
		NumFilters: 20,
		NumCoeffs:  12,
	}, nil
}

// Features computes the MFCC sequence of pcm. Frames beyond the last full
// window are dropped. An input shorter than one frame yields no features.
func (f *Frontend) Features(pcm []float64) ([][]float64, error) {
	if f.FrameLen <= 0 || f.FrameLen&(f.FrameLen-1) != 0 {
		return nil, fmt.Errorf("speech: frame length %d not a power of two", f.FrameLen)
	}
	if f.Hop <= 0 {
		return nil, fmt.Errorf("speech: hop %d", f.Hop)
	}
	window := dsp.Hamming(f.FrameLen)
	bank := f.melBank()
	var out [][]float64
	// Pre-emphasis.
	emph := make([]float64, len(pcm))
	for i := range pcm {
		if i == 0 {
			emph[i] = pcm[i]
		} else {
			emph[i] = pcm[i] - 0.97*pcm[i-1]
		}
	}
	buf := make([]float64, f.FrameLen)
	for start := 0; start+f.FrameLen <= len(emph); start += f.Hop {
		for i := range buf {
			buf[i] = emph[start+i] * window[i]
		}
		spec, err := dsp.PowerSpectrum(buf)
		if err != nil {
			return nil, err
		}
		mel := make([]float64, f.NumFilters)
		for m, filter := range bank {
			var sum float64
			for _, tap := range filter {
				sum += spec[tap.bin] * tap.weight
			}
			mel[m] = math.Log(sum + 1e-10)
		}
		out = append(out, dctII(mel, f.NumCoeffs))
	}
	return out, nil
}

type bankTap struct {
	bin    int
	weight float64
}

// melBank builds triangular mel-spaced filters over the spectrum bins.
func (f *Frontend) melBank() [][]bankTap {
	hz2mel := func(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }
	mel2hz := func(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }
	lo, hi := hz2mel(0), hz2mel(f.SampleRate/2)
	points := make([]int, f.NumFilters+2)
	nBins := f.FrameLen/2 + 1
	for i := range points {
		mel := lo + (hi-lo)*float64(i)/float64(f.NumFilters+1)
		bin := int(mel2hz(mel) / (f.SampleRate / 2) * float64(nBins-1))
		if bin >= nBins {
			bin = nBins - 1
		}
		points[i] = bin
	}
	bank := make([][]bankTap, f.NumFilters)
	for m := 0; m < f.NumFilters; m++ {
		left, center, right := points[m], points[m+1], points[m+2]
		if center == left {
			center = left + 1
		}
		if right <= center {
			right = center + 1
		}
		var taps []bankTap
		for b := left; b <= right && b < nBins; b++ {
			var w float64
			switch {
			case b < center:
				w = float64(b-left) / float64(center-left)
			default:
				w = float64(right-b) / float64(right-center)
			}
			if w > 0 {
				taps = append(taps, bankTap{bin: b, weight: w})
			}
		}
		bank[m] = taps
	}
	return bank
}

// dctII takes the first k coefficients of the DCT-II of xs.
func dctII(xs []float64, k int) []float64 {
	n := len(xs)
	if k > n {
		k = n
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var sum float64
		for i, x := range xs {
			sum += x * math.Cos(math.Pi*float64(c)*(float64(i)+0.5)/float64(n))
		}
		out[c] = sum
	}
	return out
}

// DTW returns the dynamic-time-warping distance between two feature
// sequences under the Euclidean frame metric, normalized by path length.
func DTW(a, b [][]float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("speech: DTW over empty sequence")
	}
	prev := make([]float64, len(b)+1)
	cur := make([]float64, len(b)+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= len(a); i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= len(b); j++ {
			d := frameDist(a[i-1], b[j-1])
			cur[j] = d + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)] / float64(len(a)+len(b)), nil
}

func frameDist(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := x[i] - y[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Template is a reference MFCC sequence for one vocabulary word.
type Template struct {
	Word     string
	Features [][]float64
}

// Recognizer spots keywords in a PCM stream by segmenting on energy and
// matching each segment against the templates with DTW.
type Recognizer struct {
	frontend   *Frontend
	templates  []Template
	energyFrac float64 // segment threshold as a fraction of peak RMS
	minSegment int     // minimum segment length in samples

	// MinRMS is an absolute noise floor: windows whose peak RMS stays below
	// it are treated as silence. Zero disables the floor (relative
	// thresholding only).
	MinRMS float64

	// enhance applies CMN + delta features to inputs (templates were
	// already enhanced by WithEnhancedFeatures).
	enhance bool
}

// NewRecognizer builds a recognizer over the given templates.
func NewRecognizer(frontend *Frontend, templates []Template) (*Recognizer, error) {
	if frontend == nil {
		return nil, errors.New("speech: nil frontend")
	}
	if len(templates) == 0 {
		return nil, errors.New("speech: no templates")
	}
	for _, t := range templates {
		if len(t.Features) == 0 {
			return nil, fmt.Errorf("speech: template %q has no features", t.Word)
		}
	}
	return &Recognizer{
		frontend:   frontend,
		templates:  templates,
		energyFrac: 0.25,
		minSegment: frontend.FrameLen,
	}, nil
}

// segment splits pcm into [start, end) ranges of sustained energy.
func (r *Recognizer) segment(pcm []float64) [][2]int {
	win := r.frontend.Hop
	if win < 1 {
		win = 1
	}
	var rms []float64
	for start := 0; start+win <= len(pcm); start += win {
		rms = append(rms, dsp.RMS(pcm[start:start+win]))
	}
	peak := 0.0
	for _, v := range rms {
		peak = math.Max(peak, v)
	}
	if peak == 0 || peak < r.MinRMS {
		return nil
	}
	threshold := math.Max(peak*r.energyFrac, r.MinRMS)
	var segs [][2]int
	inSeg := false
	segStart := 0
	for i, v := range rms {
		switch {
		case v >= threshold && !inSeg:
			inSeg = true
			segStart = i * win
		case v < threshold && inSeg:
			inSeg = false
			end := i * win
			if end-segStart >= r.minSegment {
				segs = append(segs, [2]int{segStart, end})
			}
		}
	}
	if inSeg {
		end := len(pcm)
		if end-segStart >= r.minSegment {
			segs = append(segs, [2]int{segStart, end})
		}
	}
	return segs
}

// Decode transcribes pcm: one best-matching word per detected utterance.
func (r *Recognizer) Decode(pcm []float64) ([]string, error) {
	var words []string
	for _, seg := range r.segment(pcm) {
		feats, err := r.frontend.Features(pcm[seg[0]:seg[1]])
		if err != nil {
			return nil, err
		}
		if len(feats) == 0 {
			continue
		}
		if r.enhance {
			if feats, err = Enhance(feats); err != nil {
				return nil, err
			}
		}
		bestWord, bestDist := "", math.Inf(1)
		for _, t := range r.templates {
			d, err := DTW(feats, t.Features)
			if err != nil {
				return nil, err
			}
			if d < bestDist {
				bestDist, bestWord = d, t.Word
			}
		}
		words = append(words, bestWord)
	}
	return words, nil
}
