// A minimal HTTP/1.1 server loop and client call on top of the package's
// wire codecs: one request per connection, explicit Content-Length bodies,
// hard deadlines and size limits on everything read from the peer. This is
// the transport under the obs metrics endpoint and the fleetd
// coordinator/worker RPC — small enough to chaos-test exhaustively, with no
// keep-alive or chunked-encoding state to get wrong.

package httplite

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Reply is what a Handler returns for one request. Content-Length and
// Connection are derived; Headers may add e.g. Content-Type.
type Reply struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// Handler produces the reply for one parsed request. It runs on the
// connection's goroutine; panics are not recovered (a handler bug should
// fail loudly, not serve 500s forever).
type Handler func(*Request) Reply

// DefaultIOTimeout bounds how long one exchange may hold a connection.
const DefaultIOTimeout = 5 * time.Second

// Server accepts connections and serves one request/response exchange per
// connection.
type Server struct {
	ln      net.Listener
	handler Handler
	timeout time.Duration
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves h until Close.
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httplite: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: h, timeout: DefaultIOTimeout}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for in-flight exchanges.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one exchange. Errors are answered when possible and
// otherwise dropped: a broken client must not affect the server's owner.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.timeout))
	raw, err := readRequestBytes(conn)
	if err != nil {
		writeReply(conn, Reply{Status: 400, Reason: "Bad Request", Body: []byte("bad request\n")})
		return
	}
	req, err := ParseRequest(raw)
	if err != nil {
		writeReply(conn, Reply{Status: 400, Reason: "Bad Request", Body: []byte("bad request\n")})
		return
	}
	rep := s.handler(req)
	if rep.Status == 0 {
		rep = Reply{Status: 500, Reason: "Internal Server Error"}
	}
	writeReply(conn, rep)
}

func writeReply(conn net.Conn, rep Reply) {
	headers := map[string]string{"Connection": "close"}
	for k, v := range rep.Headers {
		headers[k] = v
	}
	raw, err := MarshalResponse(rep.Status, rep.Reason, headers, rep.Body)
	if err != nil {
		return
	}
	_, _ = conn.Write(raw)
}

// readRequestBytes reads one full request — head to the \r\n\r\n terminator,
// then exactly the declared Content-Length of body — bounded by the parser
// limits so a hostile peer cannot balloon memory.
func readRequestBytes(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 0, 1024)
	chunk := make([]byte, 2048)
	headEnd := -1
	for headEnd < 0 {
		if len(buf) > maxHeaderBytes+4096 {
			return nil, fmt.Errorf("%w: request head", ErrTooLarge)
		}
		n, err := conn.Read(chunk)
		buf = append(buf, chunk[:n]...)
		headEnd = bytes.Index(buf, []byte("\r\n\r\n"))
		if headEnd >= 0 {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated head", ErrMalformed)
		}
	}
	cl, err := declaredLength(string(buf[:headEnd]))
	if err != nil {
		return nil, err
	}
	want := headEnd + 4 + cl
	for len(buf) < want {
		n, err := conn.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if len(buf) >= want {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated body", ErrMalformed)
		}
	}
	return buf[:want], nil
}

// declaredLength extracts the Content-Length a request head declares (0 when
// absent), enforcing the same duplicate and size rules as the parser so the
// read loop and ParseRequest can never disagree about where the body ends.
func declaredLength(head string) (int, error) {
	cl := -1
	for _, line := range strings.Split(head, "\r\n")[1:] {
		idx := strings.Index(line, ":")
		if idx <= 0 {
			continue // ParseRequest reports malformed headers
		}
		if !strings.EqualFold(strings.TrimSpace(line[:idx]), "content-length") {
			continue
		}
		if cl >= 0 {
			return 0, fmt.Errorf("%w: duplicate content-length", ErrMalformed)
		}
		v, err := strconv.Atoi(strings.TrimSpace(line[idx+1:]))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("%w: content-length %q", ErrMalformed, line[idx+1:])
		}
		cl = v
	}
	if cl < 0 {
		return 0, nil
	}
	if cl > maxBodyBytes {
		return 0, fmt.Errorf("%w: body %d bytes", ErrTooLarge, cl)
	}
	return cl, nil
}

// Do performs one request/response exchange against addr: dial, write, read
// to EOF (the server closes after one response), parse. Host defaults to
// addr when the request leaves it empty.
func Do(addr string, req *Request, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = DefaultIOTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("httplite: dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	r := *req
	if r.Host == "" {
		r.Host = addr
	}
	raw, err := r.Marshal()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(raw); err != nil {
		return nil, fmt.Errorf("httplite: write %s: %w", addr, err)
	}
	respBytes, err := io.ReadAll(io.LimitReader(conn, int64(maxHeaderBytes+maxBodyBytes+4096)))
	if err != nil {
		return nil, fmt.Errorf("httplite: read %s: %w", addr, err)
	}
	return ParseResponse(respBytes)
}
