// Package httplite is a minimal HTTP/1.1 request writer and response parser
// for constrained clients — the wire layer the REST workloads (A4's AT&T M2X
// client, A6's Dropbox manager) use to talk to their clouds. It supports
// exactly what an embedded uploader needs: one request per connection,
// explicit Content-Length bodies, and flat header handling.
package httplite

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Request is one outbound HTTP/1.1 request.
type Request struct {
	Method  string
	Path    string
	Host    string
	Headers map[string]string
	Body    []byte
}

// Errors callers match with errors.Is.
var (
	ErrMalformed = errors.New("httplite: malformed message")
	ErrTooLarge  = errors.New("httplite: message too large")
)

// Parser limits. The parsers were originally client-side only; now that
// httplite also backs server loops (obs metrics, fleetd RPC) they bound every
// dimension an attacker controls.
const (
	// maxHeaderBytes bounds the header block.
	maxHeaderBytes = 16 * 1024
	// maxHeaderCount bounds the number of header lines.
	maxHeaderCount = 64
	// maxBodyBytes bounds a declared Content-Length.
	maxBodyBytes = 4 << 20
)

var validMethods = map[string]bool{
	"GET": true, "POST": true, "PUT": true, "DELETE": true,
	"HEAD": true, "PATCH": true,
}

// Marshal serializes the request. Content-Length and Host are emitted
// automatically; user headers are written in sorted order so output is
// deterministic.
func (r *Request) Marshal() ([]byte, error) {
	if !validMethods[r.Method] {
		return nil, fmt.Errorf("%w: method %q", ErrMalformed, r.Method)
	}
	if r.Path == "" || !strings.HasPrefix(r.Path, "/") {
		return nil, fmt.Errorf("%w: path %q", ErrMalformed, r.Path)
	}
	if r.Host == "" {
		return nil, fmt.Errorf("%w: missing host", ErrMalformed)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	keys := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		kl := strings.ToLower(k)
		if kl == "host" || kl == "content-length" {
			continue // always derived
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.ContainsAny(k, "\r\n:") || strings.ContainsAny(r.Headers[k], "\r\n") {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, k)
		}
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	if len(r.Body) > 0 || r.Method == "POST" || r.Method == "PUT" || r.Method == "PATCH" {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	}
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes(), nil
}

// ParseRequest parses a serialized request (the server side of tests and
// examples).
func ParseRequest(raw []byte) (*Request, error) {
	head, body, err := splitHead(raw)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 || parts[2] != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, lines[0])
	}
	req := &Request{
		Method:  parts[0],
		Path:    parts[1],
		Headers: make(map[string]string),
	}
	if !validMethods[req.Method] {
		return nil, fmt.Errorf("%w: method %q", ErrMalformed, req.Method)
	}
	if len(lines) > maxHeaderCount+1 {
		return nil, fmt.Errorf("%w: %d header lines", ErrTooLarge, len(lines)-1)
	}
	cl := -1
	for _, line := range lines[1:] {
		k, v, err := splitHeader(line)
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(k) {
		case "host":
			req.Host = v
		case "content-length":
			if cl >= 0 {
				// Duplicate Content-Length is the classic request-smuggling
				// vector: two parsers picking different values see two
				// different bodies. Reject instead of picking one.
				return nil, fmt.Errorf("%w: duplicate content-length", ErrMalformed)
			}
			cl, err = strconv.Atoi(v)
			if err != nil || cl < 0 {
				return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, v)
			}
		default:
			req.Headers[k] = v
		}
	}
	if req.Host == "" {
		return nil, fmt.Errorf("%w: missing host", ErrMalformed)
	}
	if cl > maxBodyBytes {
		return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, cl)
	}
	if cl >= 0 {
		if len(body) < cl {
			return nil, fmt.Errorf("%w: body %d bytes, declared %d", ErrMalformed, len(body), cl)
		}
		req.Body = append([]byte(nil), body[:cl]...)
	}
	return req, nil
}

// Response is one inbound HTTP/1.1 response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// MarshalResponse serializes a response (used by the simulated cloud side).
func MarshalResponse(status int, reason string, headers map[string]string, body []byte) ([]byte, error) {
	if status < 100 || status > 599 {
		return nil, fmt.Errorf("%w: status %d", ErrMalformed, status)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, reason)
	keys := make([]string, 0, len(headers))
	for k := range headers {
		if strings.EqualFold(k, "content-length") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, headers[k])
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(body))
	b.Write(body)
	return b.Bytes(), nil
}

// ParseResponse parses a serialized response.
func ParseResponse(raw []byte) (*Response, error) {
	head, body, err := splitHead(raw)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || parts[0] != "HTTP/1.1" {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil || status < 100 || status > 599 {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	resp := &Response{Status: status, Headers: make(map[string]string)}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if len(lines) > maxHeaderCount+1 {
		return nil, fmt.Errorf("%w: %d header lines", ErrTooLarge, len(lines)-1)
	}
	cl := -1
	for _, line := range lines[1:] {
		k, v, err := splitHeader(line)
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(k, "content-length") {
			if cl >= 0 {
				return nil, fmt.Errorf("%w: duplicate content-length", ErrMalformed)
			}
			cl, err = strconv.Atoi(v)
			if err != nil || cl < 0 {
				return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, v)
			}
			continue
		}
		resp.Headers[k] = v
	}
	if cl > maxBodyBytes {
		return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, cl)
	}
	if cl >= 0 {
		if len(body) < cl {
			return nil, fmt.Errorf("%w: body %d bytes, declared %d", ErrMalformed, len(body), cl)
		}
		resp.Body = append([]byte(nil), body[:cl]...)
	}
	return resp, nil
}

func splitHead(raw []byte) (head string, body []byte, err error) {
	idx := bytes.Index(raw, []byte("\r\n\r\n"))
	if idx < 0 {
		return "", nil, fmt.Errorf("%w: no header terminator", ErrMalformed)
	}
	if idx > maxHeaderBytes {
		return "", nil, fmt.Errorf("%w: headers %d bytes", ErrTooLarge, idx)
	}
	return string(raw[:idx]), raw[idx+4:], nil
}

func splitHeader(line string) (key, value string, err error) {
	idx := strings.Index(line, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("%w: header line %q", ErrMalformed, line)
	}
	return strings.TrimSpace(line[:idx]), strings.TrimSpace(line[idx+1:]), nil
}
