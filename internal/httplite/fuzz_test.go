package httplite

import (
	"bytes"
	"strings"
	"testing"
)

// lowerHead lowercases the header block of a raw message (stops at the first
// blank line) so duplicate-header checks don't trip over body bytes.
func lowerHead(raw []byte) []byte {
	if idx := bytes.Index(raw, []byte("\r\n\r\n")); idx >= 0 {
		raw = raw[:idx]
	}
	return bytes.ToLower(raw)
}

// FuzzParseRequest: never panic; accepted requests re-marshal and re-parse.
func FuzzParseRequest(f *testing.F) {
	req := &Request{Method: "POST", Path: "/x", Host: "h", Body: []byte("b")}
	wire, err := req.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"))
	// Hardening seeds: smuggled duplicate Content-Length (must reject), an
	// oversized body declaration, and a header flood — the server-side abuse
	// shapes the limits exist for.
	f.Add([]byte("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nabcd"))
	f.Add([]byte("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 99999999\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nHost: h\r\n" + strings.Repeat("X: y\r\n", 100) + "\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ParseRequest(data)
		if err != nil {
			return
		}
		if bytes.Count(lowerHead(data), []byte("content-length")) > 1 {
			t.Fatalf("accepted a request with duplicate content-length:\n%q", data)
		}
		if len(got.Headers) > maxHeaderCount || len(got.Body) > maxBodyBytes {
			t.Fatalf("accepted a request beyond the parser limits: %d headers, %d body bytes",
				len(got.Headers), len(got.Body))
		}
		re, err := got.Marshal()
		if err != nil {
			return // header values with colons etc. may not re-marshal; fine
		}
		if _, err := ParseRequest(re); err != nil {
			t.Fatalf("re-marshaled request rejected: %v", err)
		}
	})
}

// FuzzParseResponse: never panic on arbitrary bytes.
func FuzzParseResponse(f *testing.F) {
	raw, err := MarshalResponse(200, "OK", nil, []byte("x"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 99999999\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ParseResponse(data)
		if err != nil {
			return
		}
		if bytes.Count(lowerHead(data), []byte("content-length")) > 1 {
			t.Fatalf("accepted a response with duplicate content-length:\n%q", data)
		}
		if len(got.Headers) > maxHeaderCount || len(got.Body) > maxBodyBytes {
			t.Fatalf("accepted a response beyond the parser limits: %d headers, %d body bytes",
				len(got.Headers), len(got.Body))
		}
	})
}
