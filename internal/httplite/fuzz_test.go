package httplite

import "testing"

// FuzzParseRequest: never panic; accepted requests re-marshal and re-parse.
func FuzzParseRequest(f *testing.F) {
	req := &Request{Method: "POST", Path: "/x", Host: "h", Body: []byte("b")}
	wire, err := req.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ParseRequest(data)
		if err != nil {
			return
		}
		re, err := got.Marshal()
		if err != nil {
			return // header values with colons etc. may not re-marshal; fine
		}
		if _, err := ParseRequest(re); err != nil {
			t.Fatalf("re-marshaled request rejected: %v", err)
		}
	})
}

// FuzzParseResponse: never panic on arbitrary bytes.
func FuzzParseResponse(f *testing.F) {
	raw, err := MarshalResponse(200, "OK", nil, []byte("x"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseResponse(data) //nolint:errcheck // exercising for panics
	})
}
