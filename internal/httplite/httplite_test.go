package httplite

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Path:   "/v2/devices/hub-001/updates",
		Host:   "api.m2x.att.com",
		Headers: map[string]string{
			"X-M2X-KEY":    "0123456789abcdef",
			"Content-Type": "application/json",
		},
		Body: []byte(`{"values":[1,2,3]}`),
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseRequest(raw)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if got.Method != req.Method || got.Path != req.Path || got.Host != req.Host {
		t.Errorf("parsed %+v", got)
	}
	if got.Headers["X-M2X-KEY"] != "0123456789abcdef" {
		t.Errorf("headers = %v", got.Headers)
	}
	if !bytes.Equal(got.Body, req.Body) {
		t.Errorf("body = %q", got.Body)
	}
}

// TestInteropWithStdlib: the stdlib's strict parser must accept our output.
func TestInteropWithStdlib(t *testing.T) {
	req := &Request{
		Method:  "POST",
		Path:    "/upload",
		Host:    "content.dropboxapi.com",
		Headers: map[string]string{"Content-Type": "application/octet-stream"},
		Body:    []byte("blockdata"),
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	std, err := http.ReadRequest(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("stdlib rejects our request: %v", err)
	}
	if std.Method != "POST" || std.URL.Path != "/upload" || std.Host != "content.dropboxapi.com" {
		t.Errorf("stdlib parsed %v %v %v", std.Method, std.URL, std.Host)
	}
	body, err := io.ReadAll(std.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "blockdata" {
		t.Errorf("stdlib body = %q", body)
	}
}

func TestResponseInteropWithStdlib(t *testing.T) {
	raw, err := MarshalResponse(202, "Accepted", map[string]string{"X-Request-Id": "r1"}, []byte(`{"status":"accepted"}`))
	if err != nil {
		t.Fatal(err)
	}
	std, err := http.ReadResponse(bufio.NewReader(bytes.NewReader(raw)), nil)
	if err != nil {
		t.Fatalf("stdlib rejects our response: %v", err)
	}
	if std.StatusCode != 202 {
		t.Errorf("stdlib status = %d", std.StatusCode)
	}
	ours, err := ParseResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Status != 202 || ours.Reason != "Accepted" || ours.Headers["X-Request-Id"] != "r1" {
		t.Errorf("parsed %+v", ours)
	}
	if string(ours.Body) != `{"status":"accepted"}` {
		t.Errorf("body = %q", ours.Body)
	}
}

func TestMarshalValidation(t *testing.T) {
	cases := []Request{
		{Method: "BREW", Path: "/", Host: "h"},
		{Method: "GET", Path: "nope", Host: "h"},
		{Method: "GET", Path: "/", Host: ""},
		{Method: "GET", Path: "/", Host: "h", Headers: map[string]string{"Bad\r\nHeader": "v"}},
		{Method: "GET", Path: "/", Host: "h", Headers: map[string]string{"K": "v\r\nX: y"}},
	}
	for i, r := range cases {
		if _, err := r.Marshal(); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: %v, want ErrMalformed", i, err)
		}
	}
}

func TestHostAndContentLengthAreDerived(t *testing.T) {
	req := &Request{
		Method: "POST", Path: "/", Host: "real-host",
		Headers: map[string]string{"Host": "spoofed", "Content-Length": "999"},
		Body:    []byte("ab"),
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("spoofed")) || bytes.Contains(raw, []byte("999")) {
		t.Errorf("user-supplied Host/Content-Length leaked:\n%s", raw)
	}
	if !bytes.Contains(raw, []byte("Content-Length: 2\r\n")) {
		t.Errorf("derived content-length missing:\n%s", raw)
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("no terminator"),
		[]byte("GET / HTTP/1.0\r\nHost: h\r\n\r\n"),
		[]byte("GET /\r\nHost: h\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\n\r\n"), // missing host
		[]byte("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nshort"),
		[]byte("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: -1\r\n\r\n"),
	}
	for i, raw := range bad {
		if _, err := ParseRequest(raw); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	badResp := [][]byte{
		[]byte("HTTP/1.1\r\n\r\n"),
		[]byte("HTTP/1.1 999x OK\r\n\r\n"),
		[]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab"),
	}
	for i, raw := range badResp {
		if _, err := ParseResponse(raw); err == nil {
			t.Errorf("response case %d accepted", i)
		}
	}
}

// Server-hardening limits: header count, body size, and smuggling-shaped
// duplicate Content-Length are all rejected, on both message kinds.
func TestParseLimits(t *testing.T) {
	var manyHeaders bytes.Buffer
	manyHeaders.WriteString("GET / HTTP/1.1\r\nHost: h\r\n")
	for i := 0; i < maxHeaderCount+1; i++ {
		fmt.Fprintf(&manyHeaders, "X-H%d: v\r\n", i)
	}
	manyHeaders.WriteString("\r\n")
	if _, err := ParseRequest(manyHeaders.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Errorf("header flood: %v, want ErrTooLarge", err)
	}

	huge := fmt.Sprintf("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: %d\r\n\r\n", maxBodyBytes+1)
	if _, err := ParseRequest([]byte(huge)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized body declaration: %v, want ErrTooLarge", err)
	}

	smuggled := []byte("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nabcd")
	if _, err := ParseRequest(smuggled); !errors.Is(err, ErrMalformed) {
		t.Errorf("duplicate content-length: %v, want ErrMalformed", err)
	}
	// Even two agreeing values are rejected: the point is one parser, one rule.
	agreeing := []byte("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab")
	if _, err := ParseRequest(agreeing); !errors.Is(err, ErrMalformed) {
		t.Errorf("agreeing duplicate content-length: %v, want ErrMalformed", err)
	}

	respDup := []byte("HTTP/1.1 200 OK\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx")
	if _, err := ParseResponse(respDup); !errors.Is(err, ErrMalformed) {
		t.Errorf("response duplicate content-length: %v, want ErrMalformed", err)
	}
	respHuge := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", maxBodyBytes+1)
	if _, err := ParseResponse([]byte(respHuge)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("response oversized body: %v, want ErrTooLarge", err)
	}

	var respFlood bytes.Buffer
	respFlood.WriteString("HTTP/1.1 200 OK\r\n")
	for i := 0; i < maxHeaderCount+1; i++ {
		fmt.Fprintf(&respFlood, "X-H%d: v\r\n", i)
	}
	respFlood.WriteString("\r\n")
	if _, err := ParseResponse(respFlood.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Errorf("response header flood: %v, want ErrTooLarge", err)
	}
}

func TestMarshalResponseValidation(t *testing.T) {
	if _, err := MarshalResponse(99, "x", nil, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("status 99: %v", err)
	}
}

// Property: Marshal -> ParseRequest is the identity on well-formed requests,
// and the parser never panics on arbitrary bytes.
func TestPropertyRequestRoundTrip(t *testing.T) {
	f := func(body []byte, key uint32) bool {
		req := &Request{
			Method:  "POST",
			Path:    "/data",
			Host:    "cloud.example",
			Headers: map[string]string{"X-Key": "k"},
			Body:    body,
		}
		raw, err := req.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseRequest(raw)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	robust := func(raw []byte) bool {
		_, _ = ParseRequest(raw)  //nolint:errcheck // exercising for panics
		_, _ = ParseResponse(raw) //nolint:errcheck // exercising for panics
		return true
	}
	if err := quick.Check(robust, nil); err != nil {
		t.Error(err)
	}
}
