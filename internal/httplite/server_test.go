package httplite

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startEcho(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(req *Request) Reply {
		if req.Path == "/missing" {
			return Reply{Status: 404, Reason: "Not Found", Body: []byte("nope\n")}
		}
		return Reply{
			Status:  200,
			Reason:  "OK",
			Headers: map[string]string{"Content-Type": "text/plain"},
			Body:    []byte(fmt.Sprintf("%s %s %d", req.Method, req.Path, len(req.Body))),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerRoundTrip(t *testing.T) {
	srv := startEcho(t)
	resp, err := Do(srv.Addr(), &Request{Method: "POST", Path: "/submit", Body: []byte("abcde")}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "POST /submit 5" {
		t.Errorf("status %d body %q", resp.Status, resp.Body)
	}
	if resp.Headers["Content-Type"] != "text/plain" {
		t.Errorf("headers = %v", resp.Headers)
	}
	resp, err = Do(srv.Addr(), &Request{Method: "GET", Path: "/missing"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Errorf("status = %d, want 404", resp.Status)
	}
}

// Raw garbage gets a 400, not a hang or a dropped connection.
func TestServerRejectsGarbage(t *testing.T) {
	srv := startEcho(t)
	for _, raw := range []string{
		"BREW / HTTP/1.1\r\nHost: h\r\n\r\n",
		"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nabcd",
		"total garbage\r\n\r\n",
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(raw)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		n, _ := conn.Read(buf)
		conn.Close()
		if !strings.Contains(string(buf[:n]), "400") {
			t.Errorf("input %q: reply %q, want a 400", raw, buf[:n])
		}
	}
}

// A peer that floods the head past the parser limit is cut off with 400
// rather than buffered without bound.
func TestServerBoundsHeadRead(t *testing.T) {
	srv := startEcho(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := strings.Repeat("A", maxHeaderBytes+8192) // no terminator in sight
	if _, err := conn.Write([]byte(junk)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "400") {
		t.Errorf("head flood reply %q, want a 400", buf[:n])
	}
}

func TestServerConcurrentExchanges(t *testing.T) {
	srv := startEcho(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := Do(srv.Addr(), &Request{Method: "POST", Path: "/p", Body: []byte(strings.Repeat("x", i))}, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if want := fmt.Sprintf("POST /p %d", i); string(resp.Body) != want {
				errs <- fmt.Errorf("body %q, want %q", resp.Body, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseIsIdempotentAndStopsServing(t *testing.T) {
	srv := startEcho(t)
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Do(addr, &Request{Method: "GET", Path: "/"}, 300*time.Millisecond); err == nil {
		t.Error("closed server still answered")
	}
}

func TestDeclaredLength(t *testing.T) {
	cases := []struct {
		head    string
		want    int
		wantErr error
	}{
		{"GET / HTTP/1.1\r\nHost: h", 0, nil},
		{"POST / HTTP/1.1\r\nContent-Length: 12", 12, nil},
		{"POST / HTTP/1.1\r\ncontent-length: 3", 3, nil},
		{"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1", 0, ErrMalformed},
		{"POST / HTTP/1.1\r\nContent-Length: -4", 0, ErrMalformed},
		{fmt.Sprintf("POST / HTTP/1.1\r\nContent-Length: %d", maxBodyBytes+1), 0, ErrTooLarge},
	}
	for _, c := range cases {
		got, err := declaredLength(c.head)
		if c.wantErr != nil {
			if !errors.Is(err, c.wantErr) {
				t.Errorf("%q: err %v, want %v", c.head, err, c.wantErr)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("%q: (%d, %v), want %d", c.head, got, err, c.want)
		}
	}
}
