package jpegcodec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"iothub/internal/sensor"
)

func gradientImage(t *testing.T, w, h int) *Image {
	t.Helper()
	img, err := NewImage(w, h)
	if err != nil {
		t.Fatalf("NewImage: %v", err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Pix[y*w+x] = byte((x*3 + y*5) % 256)
		}
	}
	return img
}

func TestNewImageValidation(t *testing.T) {
	if _, err := NewImage(0, 8); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewImage(8, -1); err == nil {
		t.Error("negative height accepted")
	}
}

func TestFDCTIDCTRoundTrip(t *testing.T) {
	var blk block
	for i := range blk {
		blk[i] = float64((i*7)%255) - 128
	}
	rec := idct(fdct(&blk))
	for i := range blk {
		if math.Abs(rec[i]-blk[i]) > 1e-6 {
			t.Fatalf("coeff %d: %v vs %v", i, rec[i], blk[i])
		}
	}
}

func TestFDCTDCIsBlockMean(t *testing.T) {
	var blk block
	for i := range blk {
		blk[i] = 40
	}
	coeffs := fdct(&blk)
	// DC of a constant block is 8 × value; all ACs are zero.
	if math.Abs(coeffs[0]-320) > 1e-9 {
		t.Errorf("DC = %v, want 320", coeffs[0])
	}
	for i := 1; i < len(coeffs); i++ {
		if math.Abs(coeffs[i]) > 1e-9 {
			t.Errorf("AC[%d] = %v, want 0", i, coeffs[i])
		}
	}
}

func TestMagnitudeExtendInverse(t *testing.T) {
	for v := -2048; v <= 2048; v++ {
		size, bits := magnitude(v)
		if got := extend(bits, size); got != v {
			t.Fatalf("extend(magnitude(%d)) = %d", v, got)
		}
	}
}

func TestBitWriterStuffing(t *testing.T) {
	w := &bitWriter{}
	w.write(0xFF, 8)
	w.flush()
	if !bytes.Equal(w.out, []byte{0xFF, 0x00}) {
		t.Errorf("out = %x, want ff00", w.out)
	}
	r := &bitReader{in: w.out}
	v, err := r.readBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFF {
		t.Errorf("read back %#x, want 0xFF", v)
	}
}

func TestEncodeDecodeHighQuality(t *testing.T) {
	img := gradientImage(t, 64, 48)
	data, err := Encode(img, 90)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Width != 64 || got.Height != 48 {
		t.Fatalf("decoded size %dx%d", got.Width, got.Height)
	}
	psnr, err := PSNR(img, got)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 35 {
		t.Errorf("PSNR = %.1f dB, want >= 35 at quality 90", psnr)
	}
}

func TestEncodeDecodeNonBlockAlignedSize(t *testing.T) {
	img := gradientImage(t, 37, 29) // forces edge replication
	data, err := Encode(img, 80)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := PSNR(img, got)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Errorf("PSNR = %.1f dB at odd size", psnr)
	}
}

func TestQualityOrdering(t *testing.T) {
	img := gradientImage(t, 64, 64)
	low, err := Encode(img, 10)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Encode(img, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(low) >= len(high) {
		t.Errorf("quality 10 stream (%d B) not smaller than quality 95 (%d B)", len(low), len(high))
	}
	decLow, err := Decode(low)
	if err != nil {
		t.Fatal(err)
	}
	decHigh, err := Decode(high)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PSNR(img, decLow)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := PSNR(img, decHigh)
	if err != nil {
		t.Fatal(err)
	}
	if ph <= pl {
		t.Errorf("high-quality PSNR %.1f not above low-quality %.1f", ph, pl)
	}
}

func TestQualityClamping(t *testing.T) {
	img := gradientImage(t, 16, 16)
	if _, err := Encode(img, -5); err != nil {
		t.Errorf("quality < 1 not clamped: %v", err)
	}
	if _, err := Encode(img, 500); err != nil {
		t.Errorf("quality > 100 not clamped: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(nil, 50); err == nil {
		t.Error("nil image accepted")
	}
	short := &Image{Width: 8, Height: 8, Pix: make([]byte, 10)}
	if _, err := Encode(short, 50); err == nil {
		t.Error("short pixel buffer accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0, 1}); !errors.Is(err, ErrNotJPEG) {
		t.Errorf("garbage: %v, want ErrNotJPEG", err)
	}
	if _, err := Decode([]byte{0xFF, 0xD8, 0xFF, 0xD9}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty jpeg: %v, want ErrCorrupt", err)
	}
	img := gradientImage(t, 16, 16)
	data, err := Encode(img, 75)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation anywhere should error, never panic.
	for cut := 2; cut < len(data)-2; cut += 7 {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestDecodeDetectsMissingEOI(t *testing.T) {
	img := gradientImage(t, 16, 16)
	data, err := Encode(img, 75)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] = 0x00
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing EOI: %v, want ErrCorrupt", err)
	}
}

func TestFromRGBLuma(t *testing.T) {
	rgb := []byte{255, 255, 255, 0, 0, 0, 255, 0, 0}
	img, err := FromRGB(rgb, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] != 254 && img.Pix[0] != 255 {
		t.Errorf("white luma = %d", img.Pix[0])
	}
	if img.Pix[1] != 0 {
		t.Errorf("black luma = %d", img.Pix[1])
	}
	if img.Pix[2] < 70 || img.Pix[2] > 80 {
		t.Errorf("red luma = %d, want ~76", img.Pix[2])
	}
	if _, err := FromRGB(rgb, 4, 1); err == nil {
		t.Error("short rgb buffer accepted")
	}
}

func TestFromRGBWithSensorFrame(t *testing.T) {
	frame := sensor.NewFrame(3, 96, 84)
	img, err := FromRGB(frame.RGBAt(0), 96, 84)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(img, 85)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := PSNR(img, dec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 28 {
		t.Errorf("camera-frame PSNR = %.1f dB", psnr)
	}
}

func TestPSNRIdentical(t *testing.T) {
	img := gradientImage(t, 8, 8)
	p, err := PSNR(img, img)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("identical PSNR = %v, want +Inf", p)
	}
	other := gradientImage(t, 8, 9)
	if _, err := PSNR(img, other); err == nil {
		t.Error("size mismatch accepted")
	}
}

// Property: Decode never panics on mutated streams.
func TestPropertyDecodeRobustToMutation(t *testing.T) {
	img := gradientImage(t, 24, 24)
	data, err := Encode(img, 60)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint16, val byte) bool {
		mut := append([]byte(nil), data...)
		mut[int(idx)%len(mut)] = val
		_, _ = Decode(mut) //nolint:errcheck // only exercising for panics
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: huffman decode(encode(sym)) is identity for every table symbol.
func TestPropertyHuffmanTables(t *testing.T) {
	for _, tbl := range []*huffTable{dcTable, acTable} {
		for _, sym := range tbl.values {
			w := &bitWriter{}
			c := tbl.encode[sym]
			w.write(c.code, c.bits)
			w.flush()
			r := &bitReader{in: w.out}
			got, err := r.decodeSymbol(tbl)
			if err != nil {
				t.Fatalf("decodeSymbol(%#x): %v", sym, err)
			}
			if got != sym {
				t.Fatalf("round trip %#x -> %#x", sym, got)
			}
		}
	}
}

func TestRestartMarkersRoundTrip(t *testing.T) {
	img := gradientImage(t, 64, 64) // 64 blocks
	for _, interval := range []int{1, 4, 7, 64, 100} {
		data, err := EncodeRestart(img, 85, interval)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		dec, err := Decode(data)
		if err != nil {
			t.Fatalf("interval %d: decode: %v", interval, err)
		}
		psnr, err := PSNR(img, dec)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 30 {
			t.Errorf("interval %d: PSNR %.1f", interval, psnr)
		}
	}
}

func TestRestartStreamsMatchPlainPixels(t *testing.T) {
	img := gradientImage(t, 48, 40)
	plain, err := Encode(img, 80)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := EncodeRestart(img, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(restarted) <= len(plain) {
		t.Errorf("restart stream %d B not larger than plain %d B", len(restarted), len(plain))
	}
	a, err := Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(restarted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("restart markers changed decoded pixels")
	}
}

func TestRestartIntervalValidation(t *testing.T) {
	img := gradientImage(t, 16, 16)
	if _, err := EncodeRestart(img, 80, -1); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := EncodeRestart(img, 80, 1<<16); err == nil {
		t.Error("oversized interval accepted")
	}
}

func TestRestartDecoderDetectsMissingMarker(t *testing.T) {
	img := gradientImage(t, 64, 64)
	data, err := EncodeRestart(img, 85, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Find and corrupt the first RST marker in the entropy stream.
	corrupted := false
	mut := append([]byte(nil), data...)
	for i := len(mut) - 3; i > 2; i-- {
		if mut[i] == 0xFF && mut[i+1] >= 0xD0 && mut[i+1] <= 0xD7 {
			mut[i+1] = 0x00 // stuffing instead of a marker
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no RST marker found in stream")
	}
	if _, err := Decode(mut); err == nil {
		t.Error("missing restart marker accepted")
	}
}
