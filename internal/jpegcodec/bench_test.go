package jpegcodec

import "testing"

func benchImage(b *testing.B) *Image {
	b.Helper()
	img, err := NewImage(96, 84)
	if err != nil {
		b.Fatal(err)
	}
	for y := 0; y < img.Height; y++ {
		for x := 0; x < img.Width; x++ {
			img.Pix[y*img.Width+x] = byte((x*x + y*3) % 256)
		}
	}
	return img
}

// BenchmarkEncode measures the A9-sized forward path (FDCT + quant + Huffman).
func BenchmarkEncode(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(img, 85); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures the paper's headline kernel: Huffman + dequant +
// IDCT over one camera frame.
func BenchmarkDecode(b *testing.B) {
	img := benchImage(b)
	data, err := Encode(img, 85)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIDCTBlock(b *testing.B) {
	var blk block
	for i := range blk {
		blk[i] = float64(i%64) - 32
	}
	coeffs := fdct(&blk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idct(coeffs)
	}
}
