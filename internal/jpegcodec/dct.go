package jpegcodec

import "math"

// blockSize is the JPEG transform block edge length.
const blockSize = 8

// block is one 8×8 coefficient or sample block in row-major order.
type block [blockSize * blockSize]float64

// cosTable[u][x] = cos((2x+1)uπ/16), shared by FDCT and IDCT.
var cosTable = buildCosTable()

func buildCosTable() [blockSize][blockSize]float64 {
	var t [blockSize][blockSize]float64
	for u := 0; u < blockSize; u++ {
		for x := 0; x < blockSize; x++ {
			t[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	return t
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// fdct computes the forward 8×8 DCT-II (JPEG normalization) of a block of
// level-shifted samples.
func fdct(in *block) *block {
	var tmp, out block
	// Rows.
	for y := 0; y < blockSize; y++ {
		for u := 0; u < blockSize; u++ {
			var sum float64
			for x := 0; x < blockSize; x++ {
				sum += in[y*blockSize+x] * cosTable[u][x]
			}
			tmp[y*blockSize+u] = sum * alpha(u) / 2
		}
	}
	// Columns.
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			var sum float64
			for y := 0; y < blockSize; y++ {
				sum += tmp[y*blockSize+u] * cosTable[v][y]
			}
			out[v*blockSize+u] = sum * alpha(v) / 2
		}
	}
	return &out
}

// idct computes the inverse 8×8 DCT (the paper's headline kernel for A9).
func idct(in *block) *block {
	var tmp, out block
	// Columns.
	for u := 0; u < blockSize; u++ {
		for y := 0; y < blockSize; y++ {
			var sum float64
			for v := 0; v < blockSize; v++ {
				sum += alpha(v) * in[v*blockSize+u] * cosTable[v][y]
			}
			tmp[y*blockSize+u] = sum / 2
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var sum float64
			for u := 0; u < blockSize; u++ {
				sum += alpha(u) * tmp[y*blockSize+u] * cosTable[u][x]
			}
			out[y*blockSize+x] = sum / 2
		}
	}
	return &out
}

// zigzag maps coefficient order on the wire to row-major block positions.
var zigzag = [blockSize * blockSize]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// stdLumaQuant is the Annex K luminance quantization table (quality 50).
var stdLumaQuant = [blockSize * blockSize]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// scaledQuant derives the quantization table for a quality in [1, 100] using
// the libjpeg scaling convention.
func scaledQuant(quality int) [blockSize * blockSize]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	scale := 5000 / quality
	if quality >= 50 {
		scale = 200 - quality*2
	}
	var out [blockSize * blockSize]int
	for i, q := range stdLumaQuant {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		out[i] = v
	}
	return out
}
