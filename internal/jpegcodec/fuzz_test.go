package jpegcodec

import "testing"

// FuzzDecode: arbitrary streams must never panic or allocate unboundedly.
func FuzzDecode(f *testing.F) {
	img, err := NewImage(16, 16)
	if err != nil {
		f.Fatal(err)
	}
	for i := range img.Pix {
		img.Pix[i] = byte(i)
	}
	good, err := Encode(img, 70)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	restarted, err := EncodeRestart(img, 70, 2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(restarted)
	f.Add([]byte{0xFF, 0xD8, 0xFF, 0xD9})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		if dec.Width <= 0 || dec.Height <= 0 || len(dec.Pix) != dec.Width*dec.Height {
			t.Fatalf("accepted image inconsistent: %dx%d, %d pixels", dec.Width, dec.Height, len(dec.Pix))
		}
	})
}
