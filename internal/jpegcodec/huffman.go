package jpegcodec

import (
	"errors"
	"fmt"
)

// Standard Huffman tables from ITU-T T.81 Annex K (luminance DC and AC).

var stdDCCounts = [16]byte{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0}

var stdDCValues = []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

var stdACCounts = [16]byte{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d}

var stdACValues = []byte{
	0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
	0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
	0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
	0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
	0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
	0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
	0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
	0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
	0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
	0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
	0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
	0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
	0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
	0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
	0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
	0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
	0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4,
	0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
	0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea,
	0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
	0xf9, 0xfa,
}

// huffCode is one symbol's code word.
type huffCode struct {
	code uint32
	bits int
}

// huffTable holds both encode and decode views of one Huffman table.
type huffTable struct {
	counts [16]byte
	values []byte
	encode map[byte]huffCode
	// decode maps (bits, code) to the symbol.
	decode map[uint32]byte // key: bits<<24 | code
}

func newHuffTable(counts [16]byte, values []byte) (*huffTable, error) {
	t := &huffTable{
		counts: counts,
		values: values,
		encode: make(map[byte]huffCode, len(values)),
		decode: make(map[uint32]byte, len(values)),
	}
	code := uint32(0)
	vi := 0
	for bits := 1; bits <= 16; bits++ {
		for k := 0; k < int(counts[bits-1]); k++ {
			if vi >= len(values) {
				return nil, errors.New("jpegcodec: huffman counts exceed values")
			}
			sym := values[vi]
			t.encode[sym] = huffCode{code: code, bits: bits}
			t.decode[uint32(bits)<<24|code] = sym
			code++
			vi++
		}
		code <<= 1
	}
	if vi != len(values) {
		return nil, errors.New("jpegcodec: huffman values exceed counts")
	}
	return t, nil
}

func mustHuffTable(counts [16]byte, values []byte) *huffTable {
	t, err := newHuffTable(counts, values)
	if err != nil {
		panic(err) // static Annex K tables: construction cannot fail
	}
	return t
}

var (
	dcTable = mustHuffTable(stdDCCounts, stdDCValues)
	acTable = mustHuffTable(stdACCounts, stdACValues)
)

// bitWriter packs MSB-first bits with JPEG 0xFF byte stuffing.
type bitWriter struct {
	out  []byte
	acc  uint32
	nacc int
}

func (w *bitWriter) write(code uint32, bits int) {
	w.acc = w.acc<<uint(bits) | (code & (1<<uint(bits) - 1))
	w.nacc += bits
	for w.nacc >= 8 {
		b := byte(w.acc >> uint(w.nacc-8))
		w.out = append(w.out, b)
		if b == 0xFF {
			w.out = append(w.out, 0x00)
		}
		w.nacc -= 8
	}
}

// flush pads the final partial byte with ones (T.81 §F.1.2.3).
func (w *bitWriter) flush() {
	if w.nacc > 0 {
		w.write(1<<uint(8-w.nacc)-1, 8-w.nacc)
	}
}

// bitReader unpacks MSB-first bits, removing byte stuffing.
type bitReader struct {
	in  []byte
	pos int
	acc uint32
	n   int
}

var errBits = errors.New("jpegcodec: bitstream exhausted")

func (r *bitReader) readBit() (uint32, error) {
	if r.n == 0 {
		if r.pos >= len(r.in) {
			return 0, errBits
		}
		b := r.in[r.pos]
		r.pos++
		if b == 0xFF {
			if r.pos >= len(r.in) || r.in[r.pos] != 0x00 {
				return 0, fmt.Errorf("jpegcodec: unexpected marker 0xFF%02X in entropy data", peek(r.in, r.pos))
			}
			r.pos++
		}
		r.acc = uint32(b)
		r.n = 8
	}
	r.n--
	return r.acc >> uint(r.n) & 1, nil
}

func peek(b []byte, i int) byte {
	if i < len(b) {
		return b[i]
	}
	return 0
}

func (r *bitReader) readBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}

// consumeRestart byte-aligns the reader and consumes one expected RSTn
// marker (T.81 E.2.4: restart markers sit on byte boundaries between
// entropy-coded segments).
func (r *bitReader) consumeRestart(marker byte) error {
	r.n = 0 // discard padding bits of the previous segment
	if r.pos+2 > len(r.in) {
		return errBits
	}
	if r.in[r.pos] != 0xFF || r.in[r.pos+1] != marker {
		return fmt.Errorf("jpegcodec: expected restart 0xFF%02X, found 0x%02X%02X",
			marker, r.in[r.pos], r.in[r.pos+1])
	}
	r.pos += 2
	return nil
}

// decodeSymbol walks the table bit by bit until a code matches.
func (r *bitReader) decodeSymbol(t *huffTable) (byte, error) {
	code := uint32(0)
	for bits := 1; bits <= 16; bits++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | bit
		if sym, ok := t.decode[uint32(bits)<<24|code]; ok {
			return sym, nil
		}
	}
	return 0, errors.New("jpegcodec: invalid huffman code")
}

// magnitude returns the JPEG (size, amplitude bits) encoding of v.
func magnitude(v int) (size int, bits uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	for a > 0 {
		size++
		a >>= 1
	}
	if v >= 0 {
		return size, uint32(v)
	}
	return size, uint32(v + (1 << uint(size)) - 1)
}

// extend recovers a signed value from its (size, amplitude bits) form.
func extend(bits uint32, size int) int {
	if size == 0 {
		return 0
	}
	if bits>>(uint(size)-1) != 0 {
		return int(bits)
	}
	return int(bits) - (1 << uint(size)) + 1
}
