// Package jpegcodec implements a baseline-sequential JPEG subset: grayscale
// (single component), 8-bit, with the standard Annex K quantization and
// Huffman tables and real JFIF-style markers.
//
// It is the substrate for the A9 workload ("JPEG decoder: performs the IDCT
// algorithm on raw camera frames"): the camera delivers raw frames, the
// workload compresses and decompresses them, and the decode path — Huffman
// decode, dequantization, inverse DCT — is the computation the paper's
// evaluation charges to the app.
package jpegcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Image is a grayscale image, row-major, one byte per pixel.
type Image struct {
	Width, Height int
	Pix           []byte
}

// NewImage returns a zeroed image of the given size.
func NewImage(width, height int) (*Image, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("jpegcodec: invalid size %dx%d", width, height)
	}
	return &Image{Width: width, Height: height, Pix: make([]byte, width*height)}, nil
}

// FromRGB converts a packed 24-bit RGB buffer to luma using the BT.601
// weights. Extra trailing bytes (sensor padding) are ignored; a short buffer
// is an error.
func FromRGB(rgb []byte, width, height int) (*Image, error) {
	img, err := NewImage(width, height)
	if err != nil {
		return nil, err
	}
	if len(rgb) < width*height*3 {
		return nil, fmt.Errorf("jpegcodec: rgb buffer %d bytes, need %d", len(rgb), width*height*3)
	}
	for i := 0; i < width*height; i++ {
		r, g, b := float64(rgb[3*i]), float64(rgb[3*i+1]), float64(rgb[3*i+2])
		img.Pix[i] = byte(0.299*r + 0.587*g + 0.114*b)
	}
	return img, nil
}

// Errors callers match with errors.Is.
var (
	ErrNotJPEG   = errors.New("jpegcodec: not a jpeg stream")
	ErrCorrupt   = errors.New("jpegcodec: corrupt stream")
	ErrUnsupport = errors.New("jpegcodec: unsupported jpeg feature")
)

// JFIF marker bytes used by this subset.
const (
	mSOI  = 0xD8
	mEOI  = 0xD9
	mSOF0 = 0xC0
	mDHT  = 0xC4
	mDQT  = 0xDB
	mSOS  = 0xDA
	mDRI  = 0xDD
	mRST0 = 0xD0 // RST0..RST7 = 0xD0..0xD7
)

// Encode compresses the image at the given quality (1..100).
func Encode(img *Image, quality int) ([]byte, error) {
	return EncodeRestart(img, quality, 0)
}

// EncodeRestart compresses like Encode but inserts a restart marker
// (T.81 §B.2.4.4) every restartInterval blocks: the DC predictor resets and
// the entropy stream re-aligns, bounding how far a bitstream error can
// propagate. restartInterval 0 disables restarts.
func EncodeRestart(img *Image, quality, restartInterval int) ([]byte, error) {
	if img == nil || img.Width <= 0 || img.Height <= 0 {
		return nil, errors.New("jpegcodec: nil or empty image")
	}
	if len(img.Pix) < img.Width*img.Height {
		return nil, fmt.Errorf("jpegcodec: pixel buffer %d bytes, need %d", len(img.Pix), img.Width*img.Height)
	}
	if restartInterval < 0 || restartInterval > 0xFFFF {
		return nil, fmt.Errorf("jpegcodec: restart interval %d", restartInterval)
	}
	quant := scaledQuant(quality)
	out := []byte{0xFF, mSOI}
	out = appendDQT(out, &quant)
	out = appendSOF0(out, img.Width, img.Height)
	out = appendDHT(out, 0x00, dcTable) // class 0 (DC), id 0
	out = appendDHT(out, 0x10, acTable) // class 1 (AC), id 0
	if restartInterval > 0 {
		out = append(out, 0xFF, mDRI, 0x00, 0x04,
			byte(restartInterval>>8), byte(restartInterval))
	}
	out = appendSOS(out)

	w := &bitWriter{}
	prevDC := 0
	bw := (img.Width + blockSize - 1) / blockSize
	bh := (img.Height + blockSize - 1) / blockSize
	emitted := 0
	rst := 0
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			if restartInterval > 0 && emitted > 0 && emitted%restartInterval == 0 {
				w.flush()
				w.out = append(w.out, 0xFF, byte(mRST0+rst%8))
				rst++
				prevDC = 0
			}
			blk := extractBlock(img, bx, by)
			coeffs := fdct(blk)
			prevDC = encodeBlock(w, coeffs, &quant, prevDC)
			emitted++
		}
	}
	w.flush()
	out = append(out, w.out...)
	return append(out, 0xFF, mEOI), nil
}

// extractBlock copies an 8×8 tile (edge-replicated) and level-shifts by 128.
func extractBlock(img *Image, bx, by int) *block {
	var blk block
	for y := 0; y < blockSize; y++ {
		sy := by*blockSize + y
		if sy >= img.Height {
			sy = img.Height - 1
		}
		for x := 0; x < blockSize; x++ {
			sx := bx*blockSize + x
			if sx >= img.Width {
				sx = img.Width - 1
			}
			blk[y*blockSize+x] = float64(img.Pix[sy*img.Width+sx]) - 128
		}
	}
	return &blk
}

// encodeBlock quantizes and entropy-codes one block, returning its DC value
// for the next block's differential coding.
func encodeBlock(w *bitWriter, coeffs *block, quant *[blockSize * blockSize]int, prevDC int) int {
	var q [blockSize * blockSize]int
	for i := 0; i < blockSize*blockSize; i++ {
		pos := zigzag[i]
		c := coeffs[pos] / float64(quant[pos])
		if c >= 0 {
			q[i] = int(c + 0.5)
		} else {
			q[i] = int(c - 0.5)
		}
	}
	// DC: differential, category + amplitude.
	diff := q[0] - prevDC
	size, bits := magnitude(diff)
	dc := dcTable.encode[byte(size)]
	w.write(dc.code, dc.bits)
	if size > 0 {
		w.write(bits, size)
	}
	// AC: run-length of zeros + category.
	run := 0
	for i := 1; i < blockSize*blockSize; i++ {
		if q[i] == 0 {
			run++
			continue
		}
		for run > 15 {
			zrl := acTable.encode[0xF0]
			w.write(zrl.code, zrl.bits)
			run -= 16
		}
		size, bits := magnitude(q[i])
		sym := acTable.encode[byte(run<<4|size)]
		w.write(sym.code, sym.bits)
		w.write(bits, size)
		run = 0
	}
	if run > 0 {
		eob := acTable.encode[0x00]
		w.write(eob.code, eob.bits)
	}
	return q[0]
}

func appendDQT(out []byte, quant *[blockSize * blockSize]int) []byte {
	out = append(out, 0xFF, mDQT)
	out = binary.BigEndian.AppendUint16(out, 2+1+64)
	out = append(out, 0x00) // 8-bit precision, table 0
	for i := 0; i < 64; i++ {
		out = append(out, byte(quant[zigzag[i]]))
	}
	return out
}

func appendSOF0(out []byte, width, height int) []byte {
	out = append(out, 0xFF, mSOF0)
	out = binary.BigEndian.AppendUint16(out, 2+6+3)
	out = append(out, 8) // sample precision
	out = binary.BigEndian.AppendUint16(out, uint16(height))
	out = binary.BigEndian.AppendUint16(out, uint16(width))
	out = append(out, 1)          // one component
	out = append(out, 1, 0x11, 0) // id 1, 1x1 sampling, quant table 0
	return out
}

func appendDHT(out []byte, classID byte, t *huffTable) []byte {
	out = append(out, 0xFF, mDHT)
	out = binary.BigEndian.AppendUint16(out, uint16(2+1+16+len(t.values)))
	out = append(out, classID)
	out = append(out, t.counts[:]...)
	return append(out, t.values...)
}

func appendSOS(out []byte) []byte {
	out = append(out, 0xFF, mSOS)
	out = binary.BigEndian.AppendUint16(out, 2+1+2+3)
	out = append(out, 1)       // one component in scan
	out = append(out, 1, 0x00) // component 1, DC table 0 / AC table 0
	out = append(out, 0, 63, 0)
	return out
}

// Decode decompresses a stream produced by Encode (or any single-component
// baseline JPEG using the standard tables).
func Decode(data []byte) (*Image, error) {
	d := &decoder{in: data}
	return d.decode()
}

type decoder struct {
	in      []byte
	pos     int
	quant   [blockSize * blockSize]int
	dc      *huffTable
	ac      *huffTable
	w, h    int
	restart int // blocks between restart markers, 0 = none
}

func (d *decoder) decode() (*Image, error) {
	if len(d.in) < 2 || d.in[0] != 0xFF || d.in[1] != mSOI {
		return nil, ErrNotJPEG
	}
	d.pos = 2
	for {
		marker, seg, err := d.nextSegment()
		if err != nil {
			return nil, err
		}
		switch marker {
		case mDQT:
			if err := d.parseDQT(seg); err != nil {
				return nil, err
			}
		case mSOF0:
			if err := d.parseSOF0(seg); err != nil {
				return nil, err
			}
		case mDHT:
			if err := d.parseDHT(seg); err != nil {
				return nil, err
			}
		case mDRI:
			if len(seg) < 2 {
				return nil, fmt.Errorf("%w: short DRI", ErrCorrupt)
			}
			d.restart = int(binary.BigEndian.Uint16(seg))
		case mSOS:
			return d.parseScan()
		case mEOI:
			return nil, fmt.Errorf("%w: EOI before scan", ErrCorrupt)
		default:
			if marker >= 0xC1 && marker <= 0xCF && marker != mDHT {
				return nil, fmt.Errorf("%w: SOF marker %#x", ErrUnsupport, marker)
			}
			// Skip APPn/COM and other ignorable segments.
		}
	}
}

func (d *decoder) nextSegment() (marker byte, seg []byte, err error) {
	if d.pos+2 > len(d.in) || d.in[d.pos] != 0xFF {
		return 0, nil, fmt.Errorf("%w: expected marker at %d", ErrCorrupt, d.pos)
	}
	marker = d.in[d.pos+1]
	d.pos += 2
	if marker == mEOI || marker == mSOI {
		return marker, nil, nil
	}
	if d.pos+2 > len(d.in) {
		return 0, nil, fmt.Errorf("%w: truncated segment length", ErrCorrupt)
	}
	length := int(binary.BigEndian.Uint16(d.in[d.pos:]))
	if length < 2 || d.pos+length > len(d.in) {
		return 0, nil, fmt.Errorf("%w: bad segment length %d", ErrCorrupt, length)
	}
	seg = d.in[d.pos+2 : d.pos+length]
	d.pos += length
	return marker, seg, nil
}

func (d *decoder) parseDQT(seg []byte) error {
	if len(seg) < 65 {
		return fmt.Errorf("%w: short DQT", ErrCorrupt)
	}
	if seg[0]>>4 != 0 {
		return fmt.Errorf("%w: 16-bit quant table", ErrUnsupport)
	}
	for i := 0; i < 64; i++ {
		d.quant[zigzag[i]] = int(seg[1+i])
		if d.quant[zigzag[i]] == 0 {
			return fmt.Errorf("%w: zero quant entry", ErrCorrupt)
		}
	}
	return nil
}

func (d *decoder) parseSOF0(seg []byte) error {
	if len(seg) < 9 {
		return fmt.Errorf("%w: short SOF0", ErrCorrupt)
	}
	if seg[0] != 8 {
		return fmt.Errorf("%w: %d-bit precision", ErrUnsupport, seg[0])
	}
	d.h = int(binary.BigEndian.Uint16(seg[1:]))
	d.w = int(binary.BigEndian.Uint16(seg[3:]))
	if seg[5] != 1 {
		return fmt.Errorf("%w: %d components (grayscale only)", ErrUnsupport, seg[5])
	}
	if d.w == 0 || d.h == 0 {
		return fmt.Errorf("%w: zero dimensions", ErrCorrupt)
	}
	return nil
}

func (d *decoder) parseDHT(seg []byte) error {
	for len(seg) > 0 {
		if len(seg) < 17 {
			return fmt.Errorf("%w: short DHT", ErrCorrupt)
		}
		classID := seg[0]
		var counts [16]byte
		copy(counts[:], seg[1:17])
		total := 0
		for _, c := range counts {
			total += int(c)
		}
		if len(seg) < 17+total {
			return fmt.Errorf("%w: DHT values truncated", ErrCorrupt)
		}
		t, err := newHuffTable(counts, append([]byte(nil), seg[17:17+total]...))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		switch classID >> 4 {
		case 0:
			d.dc = t
		case 1:
			d.ac = t
		default:
			return fmt.Errorf("%w: DHT class %d", ErrCorrupt, classID>>4)
		}
		seg = seg[17+total:]
	}
	return nil
}

func (d *decoder) parseScan() (*Image, error) {
	if d.w == 0 || d.h == 0 {
		return nil, fmt.Errorf("%w: SOS before SOF0", ErrCorrupt)
	}
	if d.dc == nil || d.ac == nil {
		return nil, fmt.Errorf("%w: SOS before DHT", ErrCorrupt)
	}
	zeroQuant := true
	for _, q := range d.quant {
		if q != 0 {
			zeroQuant = false
			break
		}
	}
	if zeroQuant {
		return nil, fmt.Errorf("%w: SOS before DQT", ErrCorrupt)
	}
	// Entropy-coded data runs to the EOI marker.
	end := len(d.in) - 2
	if end < d.pos || d.in[end] != 0xFF || d.in[end+1] != mEOI {
		return nil, fmt.Errorf("%w: missing EOI", ErrCorrupt)
	}
	r := &bitReader{in: d.in[d.pos:end]}
	img, err := NewImage(d.w, d.h)
	if err != nil {
		return nil, err
	}
	bw := (d.w + blockSize - 1) / blockSize
	bh := (d.h + blockSize - 1) / blockSize
	prevDC := 0
	decoded := 0
	rst := 0
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			if d.restart > 0 && decoded > 0 && decoded%d.restart == 0 {
				if err := r.consumeRestart(byte(mRST0 + rst%8)); err != nil {
					return nil, err
				}
				rst++
				prevDC = 0
			}
			coeffs, dc, err := d.decodeBlock(r, prevDC)
			if err != nil {
				return nil, err
			}
			prevDC = dc
			decoded++
			spatial := idct(coeffs)
			storeBlock(img, bx, by, spatial)
		}
	}
	return img, nil
}

func (d *decoder) decodeBlock(r *bitReader, prevDC int) (*block, int, error) {
	var q [blockSize * blockSize]int
	size, err := r.decodeSymbol(d.dc)
	if err != nil {
		return nil, 0, err
	}
	bits, err := r.readBits(int(size))
	if err != nil {
		return nil, 0, err
	}
	dc := prevDC + extend(bits, int(size))
	q[0] = dc
	for i := 1; i < blockSize*blockSize; {
		sym, err := r.decodeSymbol(d.ac)
		if err != nil {
			return nil, 0, err
		}
		if sym == 0x00 { // EOB
			break
		}
		if sym == 0xF0 { // ZRL
			i += 16
			continue
		}
		run := int(sym >> 4)
		sz := int(sym & 0x0F)
		i += run
		if i >= blockSize*blockSize {
			return nil, 0, fmt.Errorf("%w: AC run past block end", ErrCorrupt)
		}
		bits, err := r.readBits(sz)
		if err != nil {
			return nil, 0, err
		}
		q[i] = extend(bits, sz)
		i++
	}
	var coeffs block
	for i := 0; i < blockSize*blockSize; i++ {
		pos := zigzag[i]
		coeffs[pos] = float64(q[i]) * float64(d.quant[pos])
	}
	return &coeffs, dc, nil
}

func storeBlock(img *Image, bx, by int, spatial *block) {
	for y := 0; y < blockSize; y++ {
		sy := by*blockSize + y
		if sy >= img.Height {
			continue
		}
		for x := 0; x < blockSize; x++ {
			sx := bx*blockSize + x
			if sx >= img.Width {
				continue
			}
			v := spatial[y*blockSize+x] + 128
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img.Pix[sy*img.Width+sx] = byte(v + 0.5)
		}
	}
}

// PSNR reports the peak signal-to-noise ratio between two same-sized images,
// in dB (+Inf for identical images).
func PSNR(a, b *Image) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("jpegcodec: size mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
