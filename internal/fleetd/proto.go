package fleetd

import (
	"encoding/json"
	"fmt"

	"iothub/internal/fleet"
)

// The coordinator/worker protocol: five POSTed JSON RPCs. Every RPC is
// idempotent or safely re-deliverable — the transport is allowed to drop,
// delay, or duplicate any of them (and the chaos harness does, on purpose):
//
//	/spec      → the sweep spec; workers expand it locally and verify the
//	             fingerprint, so a worker can never execute the wrong sweep.
//	/lease     → claim one shard under a deadline. Re-asking is harmless.
//	/heartbeat → renew held leases; also the worker-liveness signal.
//	/submit    → deliver a shard's records. Deduplicated by shard ID: the
//	             first accepted submission wins, every replay is acked stale.
//	/status    → observability for humans, smoke scripts, and tests.

// ShardInfo names one contiguous scenario-index range [Start, End) of the
// expanded sweep. IDs are never reused: a reassigned or split shard gets
// fresh IDs, which is what makes submission dedup a map lookup.
type ShardInfo struct {
	ID      int64 `json:"id"`
	Start   int   `json:"start"`
	End     int   `json:"end"`
	Attempt int   `json:"attempt"`
}

// SpecResponse hands a worker the sweep to expand locally.
type SpecResponse struct {
	Spec        fleet.Spec `json:"spec"`
	Scenarios   int        `json:"scenarios"`
	Fingerprint string     `json:"fingerprint"`
}

// LeaseRequest asks for one shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a shard, asks the worker to retry later, or tells it
// the sweep is over.
type LeaseResponse struct {
	// Done: the sweep is complete (or aborted); the worker should exit.
	Done bool `json:"done,omitempty"`
	// Shard, when non-nil, is leased to the caller until TTLMs elapses
	// without a heartbeat. Nil with Done unset means nothing is available
	// right now — retry after RetryMs.
	Shard   *ShardInfo `json:"shard,omitempty"`
	TTLMs   int64      `json:"ttlMs,omitempty"`
	RetryMs int64      `json:"retryMs,omitempty"`
}

// HeartbeatRequest renews the caller's leases.
type HeartbeatRequest struct {
	Worker string  `json:"worker"`
	Shards []int64 `json:"shards,omitempty"`
}

// HeartbeatResponse reports which of the renewed leases are no longer held
// (expired and reassigned) so the worker can stop wasting cycles on them.
type HeartbeatResponse struct {
	OK      bool    `json:"ok"`
	Done    bool    `json:"done,omitempty"`
	Expired []int64 `json:"expired,omitempty"`
}

// SubmitRequest delivers one executed shard.
type SubmitRequest struct {
	Worker  string             `json:"worker"`
	Shard   int64              `json:"shard"`
	Attempt int                `json:"attempt"`
	Records []fleet.DoneRecord `json:"records"`
	// FP fingerprints Records; the coordinator refuses a payload that does
	// not hash to what it carries (a torn or mis-assembled submission).
	FP string `json:"fp"`
}

// SubmitResponse acknowledges a submission. Stale means the shard was
// already folded or retired (a retried, duplicated, or outrun submission) —
// the worker treats it exactly like OK and moves on.
type SubmitResponse struct {
	OK    bool   `json:"ok"`
	Stale bool   `json:"stale,omitempty"`
	Done  bool   `json:"done,omitempty"`
	Error string `json:"error,omitempty"`
}

// StatusResponse is the coordinator's observable state.
type StatusResponse struct {
	Total         int    `json:"total"`
	Folded        int    `json:"folded"`
	Errors        int    `json:"errors"`
	Done          bool   `json:"done"`
	Failed        string `json:"failed,omitempty"`
	Fingerprint   string `json:"fingerprint"`
	ShardsTotal   int    `json:"shardsTotal"`
	ShardsDone    int    `json:"shardsDone"`
	LeasesActive  int    `json:"leasesActive"`
	Reassignments int    `json:"reassignments"`
	DegradeLevel  int    `json:"degradeLevel"`
	ShardSize     int    `json:"shardSize"`
	WorkersLive   int    `json:"workersLive"`
}

// RecordsFingerprint hashes a shard's records (FNV-1a over their canonical
// JSON) — the payload integrity token carried by SubmitRequest.
func RecordsFingerprint(records []fleet.DoneRecord) string {
	h := uint64(1469598103934665603)
	for i := range records {
		blob, _ := json.Marshal(records[i])
		for _, b := range blob {
			h ^= uint64(b)
			h *= 1099511628211
		}
		h ^= '\n'
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}
