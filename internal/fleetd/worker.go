package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"syscall"
	"time"

	"iothub/internal/fleet"
	"iothub/internal/hub"
)

// ErrCoordinatorGone marks a retry budget exhausted purely on connection
// refusals: the coordinator process is not there anymore. For a disposable
// worker that almost always means the sweep finished and serve exited
// before this worker heard the Done ack — a clean exit, not a failure.
var ErrCoordinatorGone = errors.New("fleetd: coordinator unreachable (connection refused)")

// errDone is the internal signal that the worker should exit cleanly.
var errDone = errors.New("fleetd: done")

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// ID names the worker in leases and logs.
	ID string
	// Transport reaches the coordinator.
	Transport Transport
	// Parallelism is the scenarios-in-flight ceiling inside one shard
	// (default 1).
	Parallelism int
	// RetryBase / RetryMax bound the exponential backoff between RPC
	// attempts (defaults 25ms / 1s); RetryBudget caps attempts per RPC
	// (default 10). Exhausting the budget on a submit abandons the shard —
	// the lease expires and the coordinator reassigns it.
	RetryBase   time.Duration
	RetryMax    time.Duration
	RetryBudget int
	// Seed drives backoff jitter (so chaos tests are reproducible).
	Seed int64
	// Warn, when set, receives retry and abandonment notices.
	Warn io.Writer
}

func (c *WorkerConfig) fillDefaults() {
	if c.ID == "" {
		c.ID = "worker"
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 10
	}
}

// Worker pulls shard leases from a coordinator, executes them with the same
// per-scenario engine as the in-process sweep, and submits the records. All
// state lives on the coordinator: a worker can crash at any instant and the
// only cost is one lease TTL of latency.
type Worker struct {
	cfg       WorkerConfig
	scens     []hub.Scenario
	rng       uint64
	shards    int
	retries   int
	everSpoke bool
}

// NewWorker fetches and expands the sweep spec, verifying its fingerprint
// against the coordinator's so a worker can never execute the wrong sweep.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg.fillDefaults()
	w := &Worker{cfg: cfg, rng: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x1f123bb5159a55e5}
	blob, err := w.callRetry("/spec", nil)
	if err != nil {
		return nil, err
	}
	var spec SpecResponse
	if err := json.Unmarshal(blob, &spec); err != nil {
		return nil, fmt.Errorf("fleetd: bad /spec response: %w", err)
	}
	scens, err := spec.Spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("fleetd: expanding coordinator spec: %w", err)
	}
	if len(scens) != spec.Scenarios {
		return nil, fmt.Errorf("fleetd: spec expands to %d scenarios here, coordinator says %d", len(scens), spec.Scenarios)
	}
	if fp := fleet.SpecFingerprint(scens); fp != spec.Fingerprint {
		return nil, fmt.Errorf("fleetd: spec fingerprint %s != coordinator's %s", fp, spec.Fingerprint)
	}
	w.scens = scens
	return w, nil
}

// Shards reports how many shards this worker completed (submitted and
// acknowledged, including stale acks).
func (w *Worker) Shards() int { return w.shards }

// Run leases, executes, and submits shards until the coordinator reports
// the sweep done. It returns early only when the transport is terminally
// dead (e.g. the chaos harness killed this worker).
func (w *Worker) Run() error {
	for {
		blob, err := w.callRetry("/lease", LeaseRequest{Worker: w.cfg.ID})
		if err != nil {
			if errors.Is(err, ErrCoordinatorGone) {
				w.warnf("%v; exiting", err)
				return nil
			}
			return err
		}
		var grant LeaseResponse
		if err := json.Unmarshal(blob, &grant); err != nil {
			return fmt.Errorf("fleetd: bad /lease response: %w", err)
		}
		if grant.Done {
			return nil
		}
		if grant.Shard == nil {
			w.sleepJitter(time.Duration(grant.RetryMs) * time.Millisecond)
			continue
		}
		if err := w.runShard(*grant.Shard, time.Duration(grant.TTLMs)*time.Millisecond); err != nil {
			if errors.Is(err, errDone) {
				return nil
			}
			return err
		}
	}
}

// runShard executes one leased range under a heartbeat and submits it.
func (w *Worker) runShard(s ShardInfo, ttl time.Duration) error {
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go w.heartbeatLoop(s.ID, ttl, stop, &hb)
	records, runErr := fleet.RunRange(w.scens, s.Start, s.End, w.cfg.Parallelism)
	close(stop)
	hb.Wait()
	if runErr != nil {
		// A malformed lease (bad range) — abandon it; the lease will expire.
		w.warnf("shard %d: %v; abandoning", s.ID, runErr)
		return nil
	}
	req := SubmitRequest{
		Worker:  w.cfg.ID,
		Shard:   s.ID,
		Attempt: s.Attempt,
		Records: records,
		FP:      RecordsFingerprint(records),
	}
	blob, err := w.callRetry("/submit", req)
	if err != nil {
		if errors.Is(err, ErrWorkerKilled) {
			return err
		}
		if errors.Is(err, ErrCoordinatorGone) {
			// A resumed coordinator re-runs this shard from its journal.
			w.warnf("shard %d: %v; dropping result and exiting", s.ID, err)
			return errDone
		}
		// Retry budget exhausted on a live-but-lossy wire: drop the shard on
		// the floor. Its lease expires and another worker re-runs it.
		w.warnf("shard %d: submit failed after retries (%v); abandoning", s.ID, err)
		return nil
	}
	var ack SubmitResponse
	if err := json.Unmarshal(blob, &ack); err != nil {
		return fmt.Errorf("fleetd: bad /submit response: %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("fleetd: shard %d rejected: %s", s.ID, ack.Error)
	}
	w.shards++
	return nil
}

// heartbeatLoop renews one lease at TTL/3 cadence until stopped. Failures
// are tolerated — a missed heartbeat costs at most a reassignment.
func (w *Worker) heartbeatLoop(id int64, ttl time.Duration, stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	interval := ttl / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			blob, err := w.call("/heartbeat", HeartbeatRequest{Worker: w.cfg.ID, Shards: []int64{id}})
			if err != nil {
				continue
			}
			var resp HeartbeatResponse
			if err := json.Unmarshal(blob, &resp); err == nil && len(resp.Expired) > 0 {
				w.warnf("lease on shard %d expired under us; result will be acked stale", id)
				return
			}
		}
	}
}

// call makes one RPC attempt.
func (w *Worker) call(path string, req any) ([]byte, error) {
	var body []byte
	if req != nil {
		var err error
		if body, err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	return w.cfg.Transport.Call(path, body)
}

// callRetry wraps call in exponential backoff with jitter under the retry
// budget. A killed transport aborts immediately — the worker is dead, not
// unlucky.
func (w *Worker) callRetry(path string, req any) ([]byte, error) {
	delay := w.cfg.RetryBase
	var lastErr error
	refused := 0
	for attempt := 1; attempt <= w.cfg.RetryBudget; attempt++ {
		blob, err := w.call(path, req)
		if err == nil {
			w.everSpoke = true
			return blob, nil
		}
		if errors.Is(err, ErrWorkerKilled) {
			return nil, err
		}
		if errors.Is(err, syscall.ECONNREFUSED) {
			// A coordinator that once answered and now refuses outright has
			// exited; don't burn the whole backoff ladder finding out.
			if refused++; w.everSpoke && refused >= 3 {
				return nil, fmt.Errorf("%w (last error: %v)", ErrCoordinatorGone, err)
			}
		} else {
			refused = 0
		}
		lastErr = err
		w.retries++
		if attempt < w.cfg.RetryBudget {
			w.warnf("%s attempt %d/%d failed (%v); backing off %v", path, attempt, w.cfg.RetryBudget, err, delay)
			w.sleepJitter(delay)
			delay *= 2
			if delay > w.cfg.RetryMax {
				delay = w.cfg.RetryMax
			}
		}
	}
	if errors.Is(lastErr, syscall.ECONNREFUSED) {
		return nil, fmt.Errorf("%w (last error: %v)", ErrCoordinatorGone, lastErr)
	}
	return nil, fmt.Errorf("fleetd: %s: retry budget (%d) exhausted: %w", path, w.cfg.RetryBudget, lastErr)
}

// sleepJitter sleeps d scaled by a seeded factor in [0.5, 1.5) — desynchronizing
// worker retry storms without wall-clock randomness.
func (w *Worker) sleepJitter(d time.Duration) {
	if d <= 0 {
		d = time.Millisecond
	}
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	factor := 0.5 + float64(z>>11)/float64(1<<53)
	time.Sleep(time.Duration(float64(d) * factor))
}

func (w *Worker) warnf(format string, args ...any) {
	if w.cfg.Warn == nil {
		return
	}
	fmt.Fprintf(w.cfg.Warn, "fleetd[%s]: "+format+"\n", append([]any{w.cfg.ID}, args...)...)
}
