package fleetd

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/fleet"
	"iothub/internal/obs"
)

func testSpec() fleet.Spec {
	return fleet.Spec{
		Seed: 7,
		Grid: &fleet.Grid{
			Apps:           [][]apps.ID{{apps.StepCounter}, {apps.M2X}},
			Schemes:        []string{"baseline", "batching"},
			Windows:        []int{1},
			QoS:            []float64{0.25, 0.5, 0.75, 1},
			SkipAppCompute: true,
		},
	}
}

// oracle runs the spec in-process, single-worker — the byte-identity
// reference for every service-mode test.
func oracle(t *testing.T, spec fleet.Spec) []byte {
	t.Helper()
	res, err := fleet.Run(spec, fleet.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Agg.JSON()
}

func runWorkers(t *testing.T, c *Coordinator, n int, mk func(i int) WorkerConfig) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := mk(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := NewWorker(cfg)
			if err != nil {
				t.Errorf("worker %s: %v", cfg.ID, err)
				return
			}
			if err := w.Run(); err != nil {
				t.Errorf("worker %s: %v", cfg.ID, err)
			}
		}()
	}
	wg.Wait()
}

// A single worker over the loopback transport reproduces the in-process
// single-worker aggregates byte for byte.
func TestSingleWorkerMatchesInProcess(t *testing.T) {
	want := oracle(t, testSpec())
	c, err := New(Config{Spec: testSpec(), ShardSize: 3, MinShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runWorkers(t, c, 1, func(i int) WorkerConfig {
		return WorkerConfig{ID: "w0", Transport: Loopback{H: c.Handle}, Parallelism: 2}
	})
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 16 {
		t.Fatalf("completed %d scenarios, want 16", res.Completed)
	}
	if got := res.Agg.JSON(); !bytes.Equal(got, want) {
		t.Errorf("service aggregates diverge from in-process run:\n%s\nvs\n%s", got, want)
	}
}

// Several concurrent workers racing for shards still fold to the identical
// bytes: index-ordered folding erases completion order.
func TestConcurrentWorkersMatchInProcess(t *testing.T) {
	want := oracle(t, testSpec())
	c, err := New(Config{Spec: testSpec(), ShardSize: 2, MinShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runWorkers(t, c, 3, func(i int) WorkerConfig {
		return WorkerConfig{ID: string(rune('a' + i)), Transport: Loopback{H: c.Handle}, Seed: int64(i)}
	})
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Agg.JSON(); !bytes.Equal(got, want) {
		t.Errorf("multi-worker aggregates diverge:\n%s\nvs\n%s", got, want)
	}
}

// A replayed submission — same shard delivered twice — is acked stale and
// folds exactly once.
func TestSubmitIdempotent(t *testing.T) {
	g := obs.NewGauges()
	c, err := New(Config{Spec: testSpec(), ShardSize: 4, Gauges: g})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	grant := c.lease(LeaseRequest{Worker: "w"})
	if grant.Shard == nil {
		t.Fatal("no shard granted")
	}
	scens, _ := testSpec().Expand()
	records, err := fleet.RunRange(scens, grant.Shard.Start, grant.Shard.End, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{Worker: "w", Shard: grant.Shard.ID, Attempt: grant.Shard.Attempt,
		Records: records, FP: RecordsFingerprint(records)}
	first := c.submit(req)
	if !first.OK || first.Stale {
		t.Fatalf("first submit: %+v", first)
	}
	second := c.submit(req)
	if !second.OK || !second.Stale {
		t.Fatalf("replayed submit not acked stale: %+v", second)
	}
	if st := c.Status(); st.Folded != 4 || st.ShardsDone != 1 {
		t.Errorf("after duplicate submit: folded=%d shardsDone=%d, want 4/1", st.Folded, st.ShardsDone)
	}
	if snap := g.Read(); snap.SubmitDuplicates != 1 {
		t.Errorf("duplicate gauge = %d, want 1", snap.SubmitDuplicates)
	}
}

// A torn payload — fingerprint disagreeing with the records — is refused.
func TestSubmitRejectsCorruptPayload(t *testing.T) {
	c, err := New(Config{Spec: testSpec(), ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	grant := c.lease(LeaseRequest{Worker: "w"})
	scens, _ := testSpec().Expand()
	records, _ := fleet.RunRange(scens, grant.Shard.Start, grant.Shard.End, 1)
	fp := RecordsFingerprint(records)
	records[1].Metrics["total"] *= 2 // corrupt after fingerprinting
	ack := c.submit(SubmitRequest{Worker: "w", Shard: grant.Shard.ID, Records: records, FP: fp})
	if ack.OK || !strings.Contains(ack.Error, "fingerprint") {
		t.Errorf("corrupt payload accepted: %+v", ack)
	}
	// The shard is still leased; an honest resubmission succeeds.
	records2, _ := fleet.RunRange(scens, grant.Shard.Start, grant.Shard.End, 1)
	ack = c.submit(SubmitRequest{Worker: "w", Shard: grant.Shard.ID, Records: records2, FP: RecordsFingerprint(records2)})
	if !ack.OK || ack.Stale {
		t.Errorf("honest resubmission refused: %+v", ack)
	}
}

// An expired lease is reassigned with a bumped attempt, and sustained
// expiries step the degradation ladder: shard size halves, in-flight
// ceiling shrinks.
func TestLeaseExpiryReassignsAndDegrades(t *testing.T) {
	c, err := New(Config{
		Spec: testSpec(), ShardSize: 8, MinShardSize: 2,
		LeaseTTL: 20 * time.Millisecond, DegradeAfter: 2, MaxInflight: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := c.lease(LeaseRequest{Worker: "doomed"})
	if first.Shard == nil || first.Shard.Attempt != 1 {
		t.Fatalf("first lease: %+v", first)
	}
	// Never heartbeat; the janitor reaps it.
	deadline := time.Now().Add(2 * time.Second)
	for c.Status().Reassignments == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	second := c.lease(LeaseRequest{Worker: "healthy"})
	if second.Shard == nil {
		t.Fatal("no reassigned shard offered")
	}
	if second.Shard.ID == first.Shard.ID {
		t.Error("reassigned shard reuses the dead lease's ID")
	}
	if second.Shard.Start != first.Shard.Start || second.Shard.Attempt != 2 {
		t.Errorf("reassigned shard = %+v, want start %d attempt 2", second.Shard, first.Shard.Start)
	}
	// Let the second lease die too: two expiries at DegradeAfter=2 trip the ladder.
	for c.Status().Reassignments < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Status()
	if st.DegradeLevel < 1 || st.ShardSize >= 8 {
		t.Errorf("ladder did not step: level=%d shardSize=%d", st.DegradeLevel, st.ShardSize)
	}
}

// A shard that keeps dying past MaxShardAttempts fails the sweep instead of
// spinning forever.
func TestShardAttemptLimitFailsSweep(t *testing.T) {
	c, err := New(Config{
		Spec: testSpec(), ShardSize: 16,
		LeaseTTL: 10 * time.Millisecond, MaxShardAttempts: 2, ReassignBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Lease-and-abandon until the coordinator gives up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		grant := c.lease(LeaseRequest{Worker: "flaky"})
		if grant.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never failed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Wait(); err == nil || !strings.Contains(err.Error(), "died") {
		t.Errorf("sweep error = %v, want shard-death failure", err)
	}
}

// The full HTTP stack: coordinator served over httplite, worker dialing over
// TCP, /status and /metrics live alongside the RPCs.
func TestHTTPServiceEndToEnd(t *testing.T) {
	want := oracle(t, testSpec())
	c, err := New(Config{Spec: testSpec(), ShardSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := ServeHTTP("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	runWorkers(t, c, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			ID:        string(rune('a' + i)),
			Transport: HTTPTransport{Addr: srv.Addr(), Timeout: 2 * time.Second},
			Seed:      int64(i),
		}
	})
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Agg.JSON(); !bytes.Equal(got, want) {
		t.Errorf("HTTP-mode aggregates diverge:\n%s\nvs\n%s", got, want)
	}
	blob, err := HTTPTransport{Addr: srv.Addr(), Timeout: time.Second}.Call("/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Folded != 16 || st.Fingerprint != res.Agg.Fingerprint() {
		t.Errorf("status = %+v", st)
	}
	page, err := obs.Scrape(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"iothub_fleetd_shards_done", "iothub_fleetd_workers_live", "iothub_fleet_scenarios_done"} {
		if !strings.Contains(page, series) {
			t.Errorf("metrics page missing %s", series)
		}
	}
}

// The coordinator journals exactly like the in-process engine: kill it
// mid-sweep (MaxScenarios), start a fresh coordinator with -resume, finish —
// aggregates match the uninterrupted run byte for byte.
func TestCoordinatorCrashResume(t *testing.T) {
	want := oracle(t, testSpec())
	journal := filepath.Join(t.TempDir(), "fleetd.jsonl")

	first, err := New(Config{Spec: testSpec(), ShardSize: 3, Journal: journal, MaxScenarios: 7})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, first, 2, func(i int) WorkerConfig {
		return WorkerConfig{ID: string(rune('a' + i)), Transport: Loopback{H: first.Handle}, Seed: int64(i)}
	})
	res1, err := first.Wait()
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	if res1.Completed < 7 || res1.Completed >= 16 {
		t.Fatalf("truncated run folded %d scenarios, want [7,16)", res1.Completed)
	}

	second, err := New(Config{Spec: testSpec(), ShardSize: 3, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	runWorkers(t, second, 2, func(i int) WorkerConfig {
		return WorkerConfig{ID: string(rune('A' + i)), Transport: Loopback{H: second.Handle}, Seed: int64(i)}
	})
	res2, err := second.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != res1.Completed || res2.Completed != 16 {
		t.Fatalf("resume folded %d (resumed %d), want 16 (resumed %d)", res2.Completed, res2.Resumed, res1.Completed)
	}
	if got := res2.Agg.JSON(); !bytes.Equal(got, want) {
		t.Errorf("resumed aggregates diverge:\n%s\nvs\n%s", got, want)
	}
	// And the healed journal resumes under the in-process engine too — the
	// two engines share one journal format.
	res3, err := fleet.Run(testSpec(), fleet.Options{Workers: 2, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Resumed != 16 {
		t.Errorf("in-process engine resumed %d from the service journal, want 16", res3.Resumed)
	}
}

// A worker refuses a coordinator whose spec disagrees with what it expands
// locally (version skew between binaries).
func TestWorkerRejectsSpecSkew(t *testing.T) {
	c, err := New(Config{Spec: testSpec(), ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	skewed := func(path string, body []byte) (int, []byte) {
		status, resp := c.Handle(path, body)
		if path == "/spec" {
			var sp SpecResponse
			json.Unmarshal(resp, &sp)
			sp.Fingerprint = "0000000000000000"
			resp, _ = json.Marshal(sp)
		}
		return status, resp
	}
	if _, err := NewWorker(WorkerConfig{Transport: Loopback{H: skewed}, RetryBudget: 1}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("spec skew accepted: %v", err)
	}
}

// Unknown paths and malformed bodies come back as protocol errors, not
// panics.
func TestHandleRejectsGarbage(t *testing.T) {
	c, err := New(Config{Spec: testSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if status, _ := c.Handle("/nope", nil); status != 404 {
		t.Errorf("unknown path: status %d, want 404", status)
	}
	if status, _ := c.Handle("/lease", []byte("{broken")); status != 400 {
		t.Errorf("malformed lease body: status %d, want 400", status)
	}
	if status, _ := c.Handle("/submit", []byte(`"a string"`)); status != 400 {
		t.Errorf("mistyped submit body: status %d, want 400", status)
	}
}
