package fleetd

import (
	"fmt"
	"time"

	"iothub/internal/httplite"
	"iothub/internal/obs"
)

// Transport is one RPC hop from a worker to the coordinator: deliver a JSON
// body to a path, return the JSON reply. Implementations: Loopback (same
// process), HTTPTransport (httplite over TCP), and Chaos (either of those
// wrapped in seeded failure injection).
type Transport interface {
	Call(path string, body []byte) ([]byte, error)
}

// Handler is the coordinator's transport-agnostic RPC surface.
type Handler func(path string, body []byte) (status int, resp []byte)

// Loopback invokes the handler in-process — the transport under the chaos
// tests, where the wire is the thing being lied to, not the thing under
// test.
type Loopback struct {
	H Handler
}

// Call implements Transport.
func (l Loopback) Call(path string, body []byte) ([]byte, error) {
	status, resp := l.H(path, body)
	if status != 200 {
		return nil, fmt.Errorf("fleetd: %s: status %d: %s", path, status, resp)
	}
	return resp, nil
}

// HTTPTransport dials the coordinator once per call — the same
// one-request-per-connection discipline as every other httplite surface, so
// a worker holds no connection state that a coordinator restart could
// invalidate.
type HTTPTransport struct {
	Addr    string
	Timeout time.Duration
}

// Call implements Transport.
func (t HTTPTransport) Call(path string, body []byte) ([]byte, error) {
	resp, err := httplite.Do(t.Addr, &httplite.Request{
		Method:  "POST",
		Path:    path,
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    body,
	}, t.Timeout)
	if err != nil {
		return nil, fmt.Errorf("fleetd: %s: %w", path, err)
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("fleetd: %s: status %d: %s", path, resp.Status, resp.Body)
	}
	return resp.Body, nil
}

// ServeHTTP exposes a coordinator on addr: the RPC paths as POST (GET also
// accepted for the read-only /spec and /status), plus GET /metrics serving
// the coordinator's gauges in Prometheus text format.
func ServeHTTP(addr string, c *Coordinator) (*httplite.Server, error) {
	metrics := obs.MetricsHandler(c.Gauges())
	jsonHeaders := map[string]string{"Content-Type": "application/json"}
	return httplite.Serve(addr, func(req *httplite.Request) httplite.Reply {
		switch {
		case req.Path == "/metrics":
			return metrics(req)
		case req.Method == "POST" || ((req.Path == "/status" || req.Path == "/spec") && req.Method == "GET"):
			status, resp := c.Handle(req.Path, req.Body)
			reason := "OK"
			if status != 200 {
				reason = "Bad Request"
			}
			if status == 404 {
				reason = "Not Found"
			}
			return httplite.Reply{Status: status, Reason: reason, Headers: jsonHeaders, Body: resp}
		default:
			return httplite.Reply{Status: 405, Reason: "Method Not Allowed",
				Headers: jsonHeaders, Body: []byte(`{"error":"use POST"}`)}
		}
	})
}
