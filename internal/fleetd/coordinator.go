package fleetd

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"iothub/internal/fleet"
	"iothub/internal/hub"
	"iothub/internal/obs"
)

// Config tunes one coordinator. Like fleet.Options, nothing here changes
// what the sweep computes — only how it survives: the same spec folds to
// byte-identical aggregates under any lease TTL, shard size, worker
// population, or failure history.
type Config struct {
	// Spec is the sweep to shard out.
	Spec fleet.Spec
	// Journal / Resume checkpoint and recover the coordinator itself, in the
	// same fingerprint-verified format as fleet.Run — a journal written by
	// either engine resumes under the other.
	Journal string
	Resume  bool
	// LeaseTTL is how long a dispatched shard may go without a heartbeat
	// before it is reassigned (default 3s).
	LeaseTTL time.Duration
	// ShardSize is the initial scenarios-per-shard (default 64); MinShardSize
	// floors the degradation ladder's shrinking (default 8).
	ShardSize    int
	MinShardSize int
	// MaxShardAttempts fails the sweep when any one shard keeps dying
	// (default 8); ReassignBudget fails it when the sweep as a whole does
	// (default 64 lease expiries).
	MaxShardAttempts int
	ReassignBudget   int
	// DegradeAfter steps the ladder once per this many lease expiries
	// (default 4): each step halves the target shard size (≥ MinShardSize)
	// and the in-flight lease ceiling — smaller blast radius, less wasted
	// re-execution, mirroring hub.ResiliencePolicy's downshift under faults.
	DegradeAfter int
	// MaxInflight caps outstanding leases before degradation (default 16).
	MaxInflight int
	// MaxScenarios, when > 0, stops folding after that many scenarios and
	// leaves the journal resumable — the same interrupt-and-resume hook
	// fleet.Options has, used to simulate coordinator crashes in tests.
	MaxScenarios int
	// Gauges, Progress, Warn receive live state, JSON progress lines, and
	// tolerated-anomaly warnings. All optional.
	Gauges   *obs.Gauges
	Progress io.Writer
	Warn     io.Writer
}

func (c *Config) fillDefaults() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 64
	}
	if c.MinShardSize <= 0 {
		c.MinShardSize = 8
	}
	if c.MinShardSize > c.ShardSize {
		c.MinShardSize = c.ShardSize
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = 8
	}
	if c.ReassignBudget <= 0 {
		c.ReassignBudget = 64
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16
	}
}

// shard is one contiguous range of the scenario index space. Every index in
// [0, total) is owned by exactly one of: the folded prefix, a completed
// range awaiting fold, a live lease, or the pending queue — the invariant
// that makes double-counting impossible.
type shard struct {
	id      int64
	start   int
	end     int
	attempt int
}

type lease struct {
	shard   shard
	worker  string
	expires time.Time
}

type completedRange struct {
	end     int
	records []fleet.DoneRecord
}

// Coordinator owns a sweep: it shards the scenario space, leases shards to
// workers under deadlines, folds accepted submissions in strict index order
// (so the merged aggregates are byte-identical to a single-process run),
// journals every fold, and survives worker loss by reassigning expired
// leases — shrinking shards and concurrency as failures accumulate.
type Coordinator struct {
	cfg    Config
	scens  []hub.Scenario
	tags   []string
	header fleet.JournalHeader
	spec   SpecResponse
	gauges *obs.Gauges
	limit  int // fold ceiling: MaxScenarios-truncated total

	mu          sync.Mutex
	pending     []shard // sorted by start; lowest range leases first
	leases      map[int64]*lease
	nextShardID int64
	completed   map[int]completedRange // start → accepted records awaiting fold
	next        int                    // first scenario index not yet folded
	res         *fleet.Result
	jw          *fleet.JournalWriter
	workers     map[string]time.Time // worker → last heard from
	reassigns   int
	level       int // degradation-ladder level
	shardSize   int
	shardsTotal int
	shardsDone  int
	stopped     bool
	failure     error

	done        chan struct{}
	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
}

// New builds a coordinator: expands the spec, replays the journal when
// resuming (tolerating a truncated final record), shards the remaining index
// space, and starts the lease janitor.
func New(cfg Config) (*Coordinator, error) {
	cfg.fillDefaults()
	scens, err := cfg.Spec.Expand()
	if err != nil {
		return nil, err
	}
	tags := make([]string, len(scens))
	for i, s := range scens {
		tags[i] = fleet.Tag(s)
	}
	c := &Coordinator{
		cfg:         cfg,
		scens:       scens,
		tags:        tags,
		header:      fleet.Header(cfg.Spec, scens),
		gauges:      cfg.Gauges,
		leases:      map[int64]*lease{},
		completed:   map[int]completedRange{},
		workers:     map[string]time.Time{},
		shardSize:   cfg.ShardSize,
		res:         &fleet.Result{Agg: fleet.NewAggregator(), Scenarios: len(scens)},
		done:        make(chan struct{}),
		janitorStop: make(chan struct{}),
	}
	if c.gauges == nil {
		c.gauges = obs.NewGauges()
	}
	c.spec = SpecResponse{Spec: cfg.Spec, Scenarios: len(scens), Fingerprint: c.header.Spec}
	c.limit = len(scens)
	if cfg.MaxScenarios > 0 && cfg.MaxScenarios < c.limit {
		c.limit = cfg.MaxScenarios
	}

	if cfg.Resume {
		if cfg.Journal == "" {
			return nil, fmt.Errorf("fleetd: resume requested without a journal path")
		}
		replay, err := fleet.ReadJournal(cfg.Journal, c.header, tags)
		if err != nil {
			return nil, err
		}
		if err := replay.DropPartialTail(cfg.Journal); err != nil {
			return nil, err
		}
		c.res.Warnings = append(c.res.Warnings, replay.Warnings...)
		for _, w := range replay.Warnings {
			c.warnf("%s", w)
		}
		for _, d := range replay.Done {
			c.applyLocked(d)
		}
		c.res.Resumed = len(replay.Done)
		c.next = len(replay.Done)
	}
	if cfg.Journal != "" {
		c.jw, err = fleet.NewJournalWriter(cfg.Journal, c.header, !cfg.Resume)
		if err != nil {
			return nil, err
		}
	}

	c.gauges.StartSweep(len(scens), 0)
	for i := c.next; i < c.limit; i += c.shardSize {
		end := i + c.shardSize
		if end > c.limit {
			end = c.limit
		}
		c.enqueueLocked(shard{id: c.nextShardID, start: i, end: end, attempt: 1})
		c.nextShardID++
	}
	c.shardsTotal = len(c.pending)
	c.gauges.ShardsCreated(len(c.pending))

	c.mu.Lock()
	if c.next >= c.limit {
		c.finishLocked()
	}
	c.mu.Unlock()

	c.janitorWG.Add(1)
	go c.janitor()
	return c, nil
}

// Gauges exposes the coordinator's live-state gauges (the /metrics backing
// store).
func (c *Coordinator) Gauges() *obs.Gauges { return c.gauges }

// Wait blocks until the sweep completes, is stopped by MaxScenarios, or
// fails terminally, and returns the folded result.
func (c *Coordinator) Wait() (*fleet.Result, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.res, c.failure
}

// Close aborts the sweep (if still running) and releases the janitor and
// journal. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if !c.stopped {
		c.finishLocked()
	}
	c.mu.Unlock()
	c.janitorWG.Wait()
	return nil
}

// Handle is the transport-agnostic RPC dispatcher.
func (c *Coordinator) Handle(path string, body []byte) (int, []byte) {
	switch path {
	case "/spec":
		return marshal(c.spec)
	case "/lease":
		var req LeaseRequest
		if err := json.Unmarshal(orEmpty(body), &req); err != nil {
			return badRequest(err)
		}
		return marshal(c.lease(req))
	case "/heartbeat":
		var req HeartbeatRequest
		if err := json.Unmarshal(orEmpty(body), &req); err != nil {
			return badRequest(err)
		}
		return marshal(c.heartbeat(req))
	case "/submit":
		var req SubmitRequest
		if err := json.Unmarshal(orEmpty(body), &req); err != nil {
			return badRequest(err)
		}
		return marshal(c.submit(req))
	case "/status":
		return marshal(c.Status())
	default:
		return 404, []byte(`{"error":"unknown path"}`)
	}
}

func orEmpty(body []byte) []byte {
	if len(body) == 0 {
		return []byte("{}")
	}
	return body
}

func marshal(v any) (int, []byte) {
	blob, err := json.Marshal(v)
	if err != nil {
		return 500, []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return 200, blob
}

func badRequest(err error) (int, []byte) {
	return 400, []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
}

// lease grants the lowest pending shard, subject to the in-flight ceiling.
func (c *Coordinator) lease(req LeaseRequest) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.Worker, now)
	c.expireLocked(now)
	if c.stopped {
		return LeaseResponse{Done: true}
	}
	// An idle worker re-polls quickly: the tail of a sweep is workers
	// waiting on the last leases, and a long nap there is pure wall-clock
	// loss (leases stay protected by the TTL regardless of poll rate).
	retryEvery := c.cfg.LeaseTTL / 4
	if retryEvery > 50*time.Millisecond {
		retryEvery = 50 * time.Millisecond
	}
	retry := LeaseResponse{RetryMs: clampMs(retryEvery)}
	if len(c.pending) == 0 || len(c.leases) >= c.maxInflightLocked() {
		return retry
	}
	s := c.pending[0]
	c.pending = c.pending[1:]
	c.leases[s.id] = &lease{shard: s, worker: req.Worker, expires: now.Add(c.cfg.LeaseTTL)}
	c.gauges.LeaseActive(+1)
	info := ShardInfo{ID: s.id, Start: s.start, End: s.end, Attempt: s.attempt}
	return LeaseResponse{Shard: &info, TTLMs: clampMs(c.cfg.LeaseTTL)}
}

// heartbeat renews the caller's leases and reports the ones it lost.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.Worker, now)
	c.expireLocked(now)
	resp := HeartbeatResponse{OK: true, Done: c.stopped}
	for _, id := range req.Shards {
		if l, ok := c.leases[id]; ok && l.worker == req.Worker {
			l.expires = now.Add(c.cfg.LeaseTTL)
		} else {
			resp.Expired = append(resp.Expired, id)
		}
	}
	return resp
}

// submit accepts a shard's records exactly once. Replays — RPC retries,
// chaos duplications, or a slow worker outrun by a reassignment — are acked
// as stale so the worker moves on, and never fold twice.
func (c *Coordinator) submit(req SubmitRequest) SubmitResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.Worker, now)
	c.expireLocked(now)
	if c.stopped {
		return SubmitResponse{OK: true, Stale: true, Done: true}
	}
	l, ok := c.leases[req.Shard]
	if !ok {
		c.gauges.SubmitDuplicate()
		return SubmitResponse{OK: true, Stale: true, Done: c.stopped}
	}
	s := l.shard
	if len(req.Records) != s.end-s.start {
		return SubmitResponse{Error: fmt.Sprintf("shard %d: %d records, want %d", s.id, len(req.Records), s.end-s.start)}
	}
	for k, rec := range req.Records {
		if rec.Index != s.start+k {
			return SubmitResponse{Error: fmt.Sprintf("shard %d: record %d has index %d, want %d", s.id, k, rec.Index, s.start+k)}
		}
	}
	if fp := RecordsFingerprint(req.Records); fp != req.FP {
		return SubmitResponse{Error: fmt.Sprintf("shard %d: payload fingerprint %s != declared %s", s.id, fp, req.FP)}
	}
	delete(c.leases, req.Shard)
	c.gauges.LeaseActive(-1)
	c.shardsDone++
	c.gauges.ShardDone()
	c.completed[s.start] = completedRange{end: s.end, records: req.Records}
	c.foldLocked()
	return SubmitResponse{OK: true, Done: c.stopped}
}

// Status snapshots the coordinator.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{
		Total:         len(c.scens),
		Folded:        c.res.Completed,
		Errors:        c.res.Agg.Errors,
		Done:          c.stopped,
		Fingerprint:   c.res.Agg.Fingerprint(),
		ShardsTotal:   c.shardsTotal,
		ShardsDone:    c.shardsDone,
		LeasesActive:  len(c.leases),
		Reassignments: c.reassigns,
		DegradeLevel:  c.level,
		ShardSize:     c.shardSize,
		WorkersLive:   c.liveWorkersLocked(time.Now()),
	}
	if c.failure != nil {
		st.Failed = c.failure.Error()
	}
	return st
}

// applyLocked folds one record into the aggregates (no journaling — the
// resume replay path).
func (c *Coordinator) applyLocked(d fleet.DoneRecord) {
	if d.Err != "" {
		c.res.Agg.ApplyError()
		c.res.Failed = append(c.res.Failed, fleet.ScenarioError{Index: d.Index, Label: d.Label, Err: d.Err})
	} else {
		c.res.Agg.Apply(c.tags[d.Index], d.Metrics)
	}
	c.res.Completed++
	c.gauges.ScenarioDone(d.Err != "")
}

// foldLocked advances the fold pointer over every contiguous completed
// range, journaling each record in index order — the identical discipline to
// fleet.Run's reorder buffer, which is why the journal and the aggregates
// cannot tell the two engines apart.
func (c *Coordinator) foldLocked() {
	for {
		cr, ok := c.completed[c.next]
		if !ok {
			break
		}
		delete(c.completed, c.next)
		for _, d := range cr.records {
			if c.res.Completed >= c.limit {
				break // MaxScenarios stop: the rest of this range re-runs on resume
			}
			c.applyLocked(d)
			if c.jw != nil {
				if err := c.jw.WriteDone(d); err != nil {
					c.failLocked(err)
					return
				}
			}
			if c.res.Completed%fleet.SnapEvery == 0 || c.res.Completed == len(c.scens) {
				fp := c.res.Agg.Fingerprint()
				c.gauges.SetFingerprint(fp)
				if c.jw != nil {
					if err := c.jw.WriteSnap(c.res.Completed, fp); err != nil {
						c.failLocked(err)
						return
					}
				}
			}
		}
		c.next = cr.end
		c.progressLocked()
		if c.res.Completed >= c.limit {
			c.finishLocked()
			return
		}
	}
}

// expireLocked reaps lease deadline misses: each one is a reassignment,
// charged against the sweep budget and the shard's attempt allowance, and
// every DegradeAfter of them steps the degradation ladder — smaller shards,
// fewer concurrent leases.
func (c *Coordinator) expireLocked(now time.Time) {
	if c.stopped {
		return
	}
	var expired []*lease
	for _, l := range c.leases {
		if now.After(l.expires) {
			expired = append(expired, l)
		}
	}
	// Deterministic order for reproducible logs and tests.
	sort.Slice(expired, func(i, j int) bool { return expired[i].shard.start < expired[j].shard.start })
	for _, l := range expired {
		delete(c.leases, l.shard.id)
		c.gauges.LeaseActive(-1)
		c.gauges.LeaseExpired()
		c.reassigns++
		c.warnf("lease on shard %d [%d,%d) held by %q expired (attempt %d); reassigning",
			l.shard.id, l.shard.start, l.shard.end, l.worker, l.shard.attempt)
		if c.reassigns > c.cfg.ReassignBudget {
			c.failLocked(fmt.Errorf("fleetd: reassignment budget exhausted (%d expiries > %d)", c.reassigns, c.cfg.ReassignBudget))
			return
		}
		if c.reassigns%c.cfg.DegradeAfter == 0 {
			c.degradeLocked()
		}
		attempt := l.shard.attempt + 1
		if attempt > c.cfg.MaxShardAttempts {
			c.failLocked(fmt.Errorf("fleetd: shard [%d,%d) died %d times (max %d)",
				l.shard.start, l.shard.end, l.shard.attempt, c.cfg.MaxShardAttempts))
			return
		}
		// Re-queue at the current (possibly shrunk) shard size: a wide range
		// that kept dying comes back as several small ones.
		created := 0
		for i := l.shard.start; i < l.shard.end; i += c.shardSize {
			end := i + c.shardSize
			if end > l.shard.end {
				end = l.shard.end
			}
			c.enqueueLocked(shard{id: c.nextShardID, start: i, end: end, attempt: attempt})
			c.nextShardID++
			created++
		}
		c.shardsTotal += created
		c.gauges.ShardsCreated(created)
	}
}

// degradeLocked steps the ladder: halve the target shard size (floored) and
// the in-flight ceiling.
func (c *Coordinator) degradeLocked() {
	c.level++
	if half := c.shardSize / 2; half >= c.cfg.MinShardSize {
		c.shardSize = half
	} else {
		c.shardSize = c.cfg.MinShardSize
	}
	c.gauges.SetDegradeLevel(c.level)
	c.warnf("degradation level %d: shard size now %d, max in-flight leases now %d",
		c.level, c.shardSize, c.maxInflightLocked())
}

func (c *Coordinator) maxInflightLocked() int {
	m := c.cfg.MaxInflight >> c.level
	if m < 1 {
		m = 1
	}
	return m
}

func (c *Coordinator) enqueueLocked(s shard) {
	at := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].start > s.start })
	c.pending = append(c.pending, shard{})
	copy(c.pending[at+1:], c.pending[at:])
	c.pending[at] = s
}

func (c *Coordinator) sawWorkerLocked(worker string, now time.Time) {
	if worker != "" {
		c.workers[worker] = now
	}
	c.gauges.SetWorkersLive(c.liveWorkersLocked(now))
}

// liveWorkersLocked counts workers heard from within three lease TTLs.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	live := 0
	for _, at := range c.workers {
		if now.Sub(at) <= 3*c.cfg.LeaseTTL {
			live++
		}
	}
	return live
}

// failLocked records the terminal error and stops the sweep.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
	}
	c.warnf("sweep failed: %v", err)
	c.finishLocked()
}

// finishLocked seals the coordinator: fingerprint published, journal
// closed, waiters released, janitor told to stop. Idempotent.
func (c *Coordinator) finishLocked() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.gauges.SetFingerprint(c.res.Agg.Fingerprint())
	if c.jw != nil {
		if err := c.jw.Close(); err != nil && c.failure == nil {
			c.failure = err
		}
		c.jw = nil
	}
	close(c.done)
	close(c.janitorStop)
}

// janitor reaps expired leases even when no RPC arrives to trigger the lazy
// sweep — the case where every worker died at once.
func (c *Coordinator) janitor() {
	defer c.janitorWG.Done()
	interval := c.cfg.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.gauges.SetWorkersLive(c.liveWorkersLocked(now))
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) progressLocked() {
	if c.cfg.Progress == nil {
		return
	}
	fmt.Fprintf(c.cfg.Progress,
		`{"done":%d,"total":%d,"errors":%d,"shards_done":%d,"shards_total":%d,"leases":%d,"reassigns":%d,"level":%d}`+"\n",
		c.res.Completed, len(c.scens), c.res.Agg.Errors, c.shardsDone, c.shardsTotal,
		len(c.leases), c.reassigns, c.level)
}

func (c *Coordinator) warnf(format string, args ...any) {
	if c.cfg.Warn == nil {
		return
	}
	fmt.Fprintf(c.cfg.Warn, "fleetd: "+format+"\n", args...)
}

func clampMs(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}
