package fleetd

import (
	"errors"
	"sync"
	"time"
)

// ErrChaosDrop is what a worker sees when the chaos transport eats an RPC —
// either the request never arrived or the reply was lost on the way back.
// Indistinguishable by design: the worker cannot know whether the
// coordinator processed the call, which is exactly the ambiguity the
// idempotent protocol has to absorb.
var ErrChaosDrop = errors.New("fleetd: chaos: rpc dropped")

// ErrWorkerKilled is the permanent failure a killed worker's transport
// returns forever after — the in-process stand-in for kill -9.
var ErrWorkerKilled = errors.New("fleetd: chaos: worker killed")

// ChaosConfig tunes one worker's hostile wire. Probabilities are
// independent per call, evaluated in the order: kill, drop-request, delay,
// duplicate, drop-reply.
type ChaosConfig struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// DropProb loses the request before the coordinator sees it.
	DropProb float64
	// DropReplyProb loses the reply after the coordinator processed the call
	// — the nastier half of at-most-once's impossibility.
	DropReplyProb float64
	// DupProb delivers the request twice (the coordinator sees both).
	DupProb float64
	// DelayProb / MaxDelay add a random hold before delivery.
	DelayProb float64
	MaxDelay  time.Duration
	// KillAfterCalls, when > 0, permanently kills the transport after that
	// many calls — every later call (and the in-flight one) returns
	// ErrWorkerKilled.
	KillAfterCalls int
}

// Chaos wraps a Transport in seeded failure injection. Safe for concurrent
// use; the RNG is mutex-protected so a schedule is a pure function of the
// seed and the call order.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu     sync.Mutex
	rng    uint64
	calls  int
	killed bool

	// Counters for test assertions (read via Stats after the dust settles).
	drops, replyDrops, dups, delays int
}

// NewChaos wraps inner in a chaos schedule.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, rng: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// ChaosStats summarizes what a schedule actually did.
type ChaosStats struct {
	Calls, Drops, ReplyDrops, Dups, Delays int
	Killed                                 bool
}

// Stats snapshots the counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChaosStats{Calls: c.calls, Drops: c.drops, ReplyDrops: c.replyDrops,
		Dups: c.dups, Delays: c.delays, Killed: c.killed}
}

func (c *Chaos) next() float64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Call implements Transport: the wrapped call, possibly dropped, delayed,
// duplicated, or severed forever.
func (c *Chaos) Call(path string, body []byte) ([]byte, error) {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return nil, ErrWorkerKilled
	}
	c.calls++
	if c.cfg.KillAfterCalls > 0 && c.calls >= c.cfg.KillAfterCalls {
		c.killed = true
		c.mu.Unlock()
		return nil, ErrWorkerKilled
	}
	drop := c.next() < c.cfg.DropProb
	var delay time.Duration
	if c.next() < c.cfg.DelayProb && c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.next() * float64(c.cfg.MaxDelay))
	}
	dup := c.next() < c.cfg.DupProb
	dropReply := c.next() < c.cfg.DropReplyProb
	if drop {
		c.drops++
	}
	if delay > 0 {
		c.delays++
	}
	if dup {
		c.dups++
	}
	c.mu.Unlock()

	if drop {
		return nil, ErrChaosDrop
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if dup {
		// First delivery's reply is discarded — the retried/duplicated
		// request is the one whose answer the worker sees.
		c.inner.Call(path, body)
	}
	resp, err := c.inner.Call(path, body)
	if err != nil {
		return nil, err
	}
	if dropReply {
		c.mu.Lock()
		c.replyDrops++
		c.mu.Unlock()
		return nil, ErrChaosDrop
	}
	return resp, nil
}
