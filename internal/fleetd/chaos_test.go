package fleetd

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"iothub/internal/apps"
	"iothub/internal/fleet"
)

// chaosSpec expands to exactly 1000 scenarios: 2 app mixes × 2 schemes × 250
// QoS points — big enough that every failure mode in the schedule actually
// fires, small enough to sweep twice (service + oracle) in a few seconds.
func chaosSpec() fleet.Spec {
	qos := make([]float64, 250)
	for i := range qos {
		qos[i] = 0.5 + float64(i)*0.002
	}
	return fleet.Spec{
		Seed: 11,
		Grid: &fleet.Grid{
			Apps:           [][]apps.ID{{apps.StepCounter}, {apps.M2X}},
			Schemes:        []string{"baseline", "batching"},
			Windows:        []int{1},
			QoS:            qos,
			SkipAppCompute: true,
		},
	}
}

// chaosFleet runs n workers against c, each behind its own seeded Chaos
// wire. Worker 0 carries a kill switch when killAfter > 0. Returns the
// chaos wrappers for schedule assertions.
func chaosFleet(t *testing.T, c *Coordinator, n, killAfter int, seed int64) []*Chaos {
	t.Helper()
	wires := make([]*Chaos, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := ChaosConfig{
			Seed:          seed + int64(i),
			DropProb:      0.10,
			DropReplyProb: 0.05,
			DupProb:       0.10,
			DelayProb:     0.20,
			MaxDelay:      3 * time.Millisecond,
		}
		if i == 0 {
			cfg.KillAfterCalls = killAfter
		}
		wires[i] = NewChaos(Loopback{H: c.Handle}, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerConfig{
				ID:        string(rune('a' + i)),
				Transport: wires[i],
				Seed:      seed + int64(i),
				RetryBase: 2 * time.Millisecond,
				RetryMax:  20 * time.Millisecond,
			})
			if err != nil {
				if i == 0 && errors.Is(err, ErrWorkerKilled) {
					return // died during startup — that's a legal schedule
				}
				t.Errorf("worker %d: %v", i, err)
				return
			}
			if err := w.Run(); err != nil && !(i == 0 && errors.Is(err, ErrWorkerKilled)) {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	return wires
}

// The headline robustness claim: a 1000-scenario sweep sharded across four
// workers — RPCs dropped both directions, duplicated, delayed, one worker
// killed mid-sweep — produces merged aggregates byte-identical to the
// single-process workers=1 run.
func TestChaosSweepByteIdentical(t *testing.T) {
	spec := chaosSpec()
	want := oracle(t, spec)

	c, err := New(Config{
		Spec:      spec,
		ShardSize: 50, MinShardSize: 10,
		LeaseTTL:       250 * time.Millisecond,
		ReassignBudget: 200, MaxShardAttempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wires := chaosFleet(t, c, 4, 25, 1)
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1000 {
		t.Fatalf("folded %d scenarios, want 1000", res.Completed)
	}
	got := res.Agg.JSON()
	if !bytes.Equal(got, want) {
		t.Errorf("chaos-mode aggregates diverge from workers=1 oracle\nservice fingerprint: %s\noracle bytes:  %d\nservice bytes: %d",
			res.Agg.Fingerprint(), len(want), len(got))
	}

	// The schedule must have actually been hostile, or this test proves
	// nothing: the kill fired, and the wire lost/duplicated traffic.
	var stats ChaosStats
	for _, w := range wires {
		s := w.Stats()
		stats.Calls += s.Calls
		stats.Drops += s.Drops
		stats.ReplyDrops += s.ReplyDrops
		stats.Dups += s.Dups
		stats.Delays += s.Delays
	}
	if !wires[0].Stats().Killed {
		t.Error("kill switch never fired — schedule too gentle")
	}
	if stats.Drops == 0 || stats.ReplyDrops == 0 || stats.Dups == 0 || stats.Delays == 0 {
		t.Errorf("schedule too gentle to be a chaos test: %+v", stats)
	}
	st := c.Status()
	t.Logf("chaos schedule: %+v; coordinator: reassigns=%d degradeLevel=%d shardsTotal=%d",
		stats, st.Reassignments, st.DegradeLevel, st.ShardsTotal)
}

// The same hostile schedule, plus a coordinator crash: kill the coordinator
// mid-sweep (MaxScenarios), bring up a fresh one with Resume against the
// same journal, finish under chaos again — still byte-identical.
func TestChaosCoordinatorKillAndResume(t *testing.T) {
	spec := chaosSpec()
	want := oracle(t, spec)
	journal := filepath.Join(t.TempDir(), "fleetd.jsonl")

	first, err := New(Config{
		Spec: spec, Journal: journal, MaxScenarios: 400,
		ShardSize: 50, MinShardSize: 10,
		LeaseTTL:       250 * time.Millisecond,
		ReassignBudget: 200, MaxShardAttempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaosFleet(t, first, 3, 20, 7)
	res1, err := first.Wait()
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	if res1.Completed < 400 || res1.Completed >= 1000 {
		t.Fatalf("first coordinator folded %d, want a mid-sweep stop in [400,1000)", res1.Completed)
	}

	second, err := New(Config{
		Spec: spec, Journal: journal, Resume: true,
		ShardSize: 50, MinShardSize: 10,
		LeaseTTL:       250 * time.Millisecond,
		ReassignBudget: 200, MaxShardAttempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	chaosFleet(t, second, 3, 30, 13)
	res2, err := second.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != res1.Completed || res2.Completed != 1000 {
		t.Fatalf("resume folded %d (resumed %d), want 1000 (resumed %d)",
			res2.Completed, res2.Resumed, res1.Completed)
	}
	if got := res2.Agg.JSON(); !bytes.Equal(got, want) {
		t.Errorf("post-crash aggregates diverge from workers=1 oracle (fingerprint %s vs oracle run)",
			res2.Agg.Fingerprint())
	}
}

// Chaos wrappers are deterministic: the same seed and call sequence produce
// the same schedule.
func TestChaosScheduleDeterministic(t *testing.T) {
	count := func() ChaosStats {
		inner := Loopback{H: func(path string, body []byte) (int, []byte) { return 200, []byte("{}") }}
		ch := NewChaos(inner, ChaosConfig{Seed: 42, DropProb: 0.3, DropReplyProb: 0.1, DupProb: 0.2})
		for i := 0; i < 200; i++ {
			ch.Call("/x", nil)
		}
		return ch.Stats()
	}
	a, b := count(), count()
	if a != b {
		t.Errorf("same seed, different schedules: %+v vs %+v", a, b)
	}
	if a.Drops == 0 || a.ReplyDrops == 0 || a.Dups == 0 {
		t.Errorf("probabilities never fired over 200 calls: %+v", a)
	}
}

// A killed transport is dead forever — no zombie resurrection.
func TestChaosKillIsPermanent(t *testing.T) {
	inner := Loopback{H: func(path string, body []byte) (int, []byte) { return 200, []byte("{}") }}
	ch := NewChaos(inner, ChaosConfig{Seed: 1, KillAfterCalls: 3})
	var killed int
	for i := 0; i < 10; i++ {
		if _, err := ch.Call("/x", nil); errors.Is(err, ErrWorkerKilled) {
			killed++
		}
	}
	if killed != 8 {
		t.Errorf("calls 3..10 should all die: %d killed, want 8", killed)
	}
	if !ch.Stats().Killed {
		t.Error("stats do not report the kill")
	}
}
