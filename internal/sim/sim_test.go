package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsEventsInOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	mustAt(t, s, 30, func() { got = append(got, 3) })
	mustAt(t, s, 10, func() { got = append(got, 1) })
	mustAt(t, s, 20, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		mustAt(t, s, 5, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want FIFO", got)
		}
	}
}

func TestSchedulerRejectsPast(t *testing.T) {
	s := NewScheduler()
	mustAt(t, s, 100, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := s.At(50, func() {}); err == nil {
		t.Fatal("At in the past succeeded, want error")
	}
}

func TestSchedulerRejectsNilCallback(t *testing.T) {
	s := NewScheduler()
	if _, err := s.At(0, nil); err == nil {
		t.Fatal("At(nil) succeeded, want error")
	}
}

func TestAfterClampsNegative(t *testing.T) {
	s := NewScheduler()
	ran := false
	if _, err := s.After(-time.Second, func() { ran = true }); err != nil {
		t.Fatalf("After: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("negative After never ran")
	}
	if s.Now() != 0 {
		t.Errorf("Now = %v, want 0", s.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var got []Time
	mustAt(t, s, 10, func() {
		got = append(got, s.Now())
		if _, err := s.After(5*time.Nanosecond, func() { got = append(got, s.Now()) }); err != nil {
			t.Errorf("nested After: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	s := NewScheduler()
	ranEarly, ranLate := false, false
	mustAt(t, s, 10, func() { ranEarly = true })
	mustAt(t, s, 100, func() { ranLate = true })
	if err := s.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !ranEarly || ranLate {
		t.Fatalf("ranEarly=%v ranLate=%v, want true/false", ranEarly, ranLate)
	}
	if s.Now() != 50 {
		t.Errorf("Now = %v, want 50", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ranLate {
		t.Error("late event never ran after Run")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 5; i++ {
		mustAt(t, s, Time(i), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	// A fresh Run resumes with the remaining events.
	if err := s.Run(); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 5 {
		t.Errorf("count after resume = %d, want 5", count)
	}
}

func TestCancelRemovesEvent(t *testing.T) {
	s := NewScheduler()
	ran := false
	id, err := s.At(10, func() { ran = true })
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if !s.Cancel(id) {
		t.Fatal("Cancel reported false for a pending event")
	}
	if s.Cancel(id) {
		t.Fatal("second Cancel reported true")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestCancelZeroID(t *testing.T) {
	s := NewScheduler()
	if s.Cancel(EventID{}) {
		t.Error("Cancel of zero EventID reported true")
	}
}

func TestRunReentrancyRejected(t *testing.T) {
	s := NewScheduler()
	var inner error
	mustAt(t, s, 1, func() { inner = s.Run() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if inner == nil {
		t.Fatal("re-entrant Run succeeded, want error")
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if got := tm.Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := tm.Add(500 * time.Millisecond); got != Time(2*time.Second) {
		t.Errorf("Add = %v, want 2s", got)
	}
	if got := tm.String(); got != "1.5s" {
		t.Errorf("String = %q, want 1.5s", got)
	}
	if got := tm.Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order
// and the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			if _, err := s.At(at, func() { fired = append(fired, s.Now()) }); err != nil {
				return false
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil(d) never executes an event scheduled after d, and a
// following Run executes exactly the remainder.
func TestPropertyRunUntilPartition(t *testing.T) {
	f := func(offsets []uint16, deadline uint16) bool {
		s := NewScheduler()
		early, late := 0, 0
		wantEarly, wantLate := 0, 0
		for _, off := range offsets {
			at := Time(off)
			if at <= Time(deadline) {
				wantEarly++
			} else {
				wantLate++
			}
			cb := func() {
				if s.Now() <= Time(deadline) {
					early++
				} else {
					late++
				}
			}
			if _, err := s.At(at, cb); err != nil {
				return false
			}
		}
		if err := s.RunUntil(Time(deadline)); err != nil {
			return false
		}
		if early != wantEarly || late != 0 {
			return false
		}
		if err := s.Run(); err != nil {
			return false
		}
		return late == wantLate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustAt(t *testing.T, s *Scheduler, at Time, fn func()) {
	t.Helper()
	if _, err := s.At(at, fn); err != nil {
		t.Fatalf("At(%v): %v", at, err)
	}
}
