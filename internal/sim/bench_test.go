package sim

import (
	"testing"
	"time"
)

// BenchmarkSchedulerThroughput measures raw event dispatch: schedule and run
// 10k chained events per iteration.
func BenchmarkSchedulerThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		count := 0
		var step func()
		step = func() {
			count++
			if count < 10_000 {
				if _, err := s.After(time.Microsecond, step); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := s.At(0, step); err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerFanOut measures heap behavior with a wide pre-scheduled
// event set (the hub's per-sample schedule shape).
func BenchmarkSchedulerFanOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		for k := 0; k < 5000; k++ {
			if _, err := s.At(Time(k), func() {}); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
