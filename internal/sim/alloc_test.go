package sim

import (
	"testing"
	"time"
)

// TestSteadyStateScheduleDispatchZeroAlloc pins the kernel's core contract:
// once the arena and heap have warmed up, a schedule→dispatch cycle performs
// no heap allocations — popped slots are recycled through the free list.
func TestSteadyStateScheduleDispatchZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm up: grow the arena, heap, and free list to steady-state capacity.
	for i := 0; i < 64; i++ {
		if _, err := s.After(time.Microsecond, fn); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			if _, err := s.After(time.Microsecond, fn); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("steady-state schedule+dispatch allocates %v per run, want 0", got)
	}
}

// TestSteadyStateCancelZeroAlloc covers the resilience layer's pattern:
// schedule/cancel interleave must also be allocation-free once warm.
func TestSteadyStateCancelZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 64; i++ {
		if _, err := s.After(time.Microsecond, fn); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		id, err := s.After(time.Millisecond, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Cancel(id) {
			t.Fatal("Cancel of pending event reported false")
		}
	})
	if got != 0 {
		t.Errorf("steady-state schedule+cancel allocates %v per run, want 0", got)
	}
}

// TestCancelAfterSlotReuseReportsFalse exercises the generation counter: an
// EventID whose arena slot has been recycled by newer events must keep
// reporting false from Cancel instead of cancelling the new occupant (the
// classic ABA hazard of index-based pools).
func TestCancelAfterSlotReuseReportsFalse(t *testing.T) {
	s := NewScheduler()
	stale, err := s.At(10, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil { // stale's slot is released here
		t.Fatal(err)
	}

	ran := false
	fresh, err := s.At(20, func() { ran = true }) // reuses the freed slot
	if err != nil {
		t.Fatal(err)
	}
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse (LIFO free list): fresh slot %d, stale slot %d", fresh.slot, stale.slot)
	}
	if fresh.gen == stale.gen {
		t.Fatal("generation not bumped on slot reuse")
	}

	if s.Cancel(stale) {
		t.Error("Cancel of a stale EventID reported true after slot reuse")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("stale Cancel removed the slot's new occupant")
	}
	// And the fresh ID is itself stale now that it has run.
	if s.Cancel(fresh) {
		t.Error("Cancel reported true for an event that already ran")
	}
}

// TestCancelHeavyInterleaveOrdering stresses the cancellation path of the
// 4-ary heap: half the events are cancelled in an interleaved pattern and
// the survivors must still fire in exact (at, seq) order.
func TestCancelHeavyInterleaveOrdering(t *testing.T) {
	s := NewScheduler()
	const n = 1000
	ids := make([]EventID, 0, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		// Deliberately colliding timestamps to exercise the seq tie-break.
		id, err := s.At(Time(i%37), func() { fired = append(fired, i) })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < n; i += 2 {
		if !s.Cancel(ids[i]) {
			t.Fatalf("Cancel #%d reported false for a pending event", i)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n/2 {
		t.Fatalf("%d events fired, want %d", len(fired), n/2)
	}
	// Survivors are the odd i; for equal timestamps, schedule order wins.
	at := func(i int) int { return i % 37 }
	for k := 1; k < len(fired); k++ {
		a, b := fired[k-1], fired[k]
		if at(a) > at(b) || (at(a) == at(b) && a > b) {
			t.Fatalf("dispatch order violated: %d (t=%d) before %d (t=%d)", a, at(a), b, at(b))
		}
	}
}

// BenchmarkSchedulerCancelHeavy measures the schedule/cancel interleave the
// resilience layer produces (watchdogs armed per window and disarmed on
// success): for every dispatched event, three are scheduled and two
// cancelled.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep, err := s.After(time.Microsecond, fn)
		if err != nil {
			b.Fatal(err)
		}
		_ = keep
		w1, err := s.After(time.Millisecond, fn)
		if err != nil {
			b.Fatal(err)
		}
		w2, err := s.After(time.Second, fn)
		if err != nil {
			b.Fatal(err)
		}
		if !s.Cancel(w1) || !s.Cancel(w2) {
			b.Fatal("Cancel reported false for pending watchdogs")
		}
		if i%64 == 63 {
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
