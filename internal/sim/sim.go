// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock (nanosecond resolution) by executing
// events in timestamp order. Events scheduled for the same instant run in
// the order they were scheduled (a strictly monotone sequence number breaks
// ties), which makes every run byte-for-byte reproducible.
//
// The kernel is single-threaded by design: event callbacks run on the
// goroutine that calls Run, so model code needs no locking. This mirrors the
// structure of classic DES engines (e.g. ns-3, SimPy) and is what makes the
// energy accounting in package energy exact — power-state changes are totally
// ordered on the virtual timeline.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is an instant on the virtual timeline, in nanoseconds since the start
// of the simulation. It is a distinct type from time.Duration to keep virtual
// and wall-clock time from being mixed up at compile time.
type Time int64

// Duration converts a virtual instant to the duration elapsed since t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant in seconds since the start of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as a duration offset, e.g. "12.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// At returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained.
var ErrStopped = errors.New("simulation stopped")

// event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: schedule order
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return // cannot happen: Push is only reached via heap.Push below
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Scheduler is the discrete-event engine. The zero value is not usable; call
// NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	running bool
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports how many events are currently scheduled.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at instant t. Scheduling in the past (t < Now) is a
// programming error in the model and returns an error; the event is not
// scheduled.
func (s *Scheduler) At(t Time, fn func()) (EventID, error) {
	if t < s.now {
		return EventID{}, fmt.Errorf("sim: schedule at %v before now %v", t, s.now)
	}
	if fn == nil {
		return EventID{}, errors.New("sim: schedule nil callback")
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev: ev}, nil
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero so "run as soon as possible" is easy to express.
func (s *Scheduler) After(d time.Duration, fn func()) (EventID, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an event that already ran or
// was already cancelled is a no-op and reports false.
func (s *Scheduler) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, id.ev.index)
	id.ev.index = -1
	return true
}

// Stop halts the simulation: the currently executing event finishes and Run
// returns ErrStopped. Safe to call from inside an event callback.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty. It returns ErrStopped if the
// run was halted by Stop.
func (s *Scheduler) Run() error {
	return s.run(func(Time) bool { return true })
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) error {
	err := s.run(func(t Time) bool { return t <= deadline })
	if err == nil && s.now < deadline {
		s.now = deadline
	}
	return err
}

func (s *Scheduler) run(keep func(Time) bool) error {
	if s.running {
		return errors.New("sim: Run re-entered from an event callback")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if !keep(next.at) {
			return nil
		}
		popped, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return errors.New("sim: corrupted event queue")
		}
		s.now = popped.at
		popped.fn()
	}
	return nil
}
