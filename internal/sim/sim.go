// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock (nanosecond resolution) by executing
// events in timestamp order. Events scheduled for the same instant run in
// the order they were scheduled (a strictly monotone sequence number breaks
// ties), which makes every run byte-for-byte reproducible.
//
// The kernel is single-threaded by design: event callbacks run on the
// goroutine that calls Run, so model code needs no locking. This mirrors the
// structure of classic DES engines (e.g. ns-3, SimPy) and is what makes the
// energy accounting in package energy exact — power-state changes are totally
// ordered on the virtual timeline.
//
// Internally the queue is an index-based 4-ary min-heap over a value-typed
// event arena with a free list, so steady-state schedule→dispatch performs
// no heap allocations: popped slots are recycled, and cancellation is safe
// across recycling because EventIDs carry a per-slot generation counter.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Time is an instant on the virtual timeline, in nanoseconds since the start
// of the simulation. It is a distinct type from time.Duration to keep virtual
// and wall-clock time from being mixed up at compile time.
type Time int64

// Duration converts a virtual instant to the duration elapsed since t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant in seconds since the start of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as a duration offset, e.g. "12.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// At returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained.
var ErrStopped = errors.New("simulation stopped")

// Arg is the context an event carries to a Callback: a small operation
// discriminator plus two integer and two pointer payloads. It rides inside
// the event's arena slot, so scheduling with AtCall/AfterCall captures no
// closure — the allocation-free alternative to At/After for hot paths that
// fire the same handler with different context millions of times per run.
type Arg struct {
	// Op discriminates event kinds when one Callback handles several
	// (typically a switch in OnEvent).
	Op     int
	I0, I1 int64
	P0, P1 any
}

// Callback is the closure-free event handler: OnEvent receives the Arg the
// event was scheduled with. Model objects implement it once and dispatch on
// Arg.Op, so a long-lived object schedules unbounded events with zero
// per-event allocations.
type Callback interface {
	OnEvent(Arg)
}

// Done is a completion notification value: a Callback plus the Arg to
// deliver. It replaces `done func()` parameters on hot execution paths —
// being a value, it is copied into work queues without allocating. The zero
// Done means "no notification".
type Done struct {
	CB  Callback
	Arg Arg
}

// Invoke delivers the notification; a zero Done is a no-op.
func (d Done) Invoke() {
	if d.CB != nil {
		d.CB.OnEvent(d.Arg)
	}
}

// funcCB adapts a plain func() to Callback. Func values are pointer-shaped,
// so the conversion to the interface does not allocate.
type funcCB func()

func (f funcCB) OnEvent(Arg) { f() }

// Call wraps a plain completion func as a Done, so func-based convenience
// APIs can delegate to their Done-based siblings. A nil fn yields the zero
// (no-op) Done.
func Call(fn func()) Done {
	if fn == nil {
		return Done{}
	}
	return Done{CB: funcCB(fn)}
}

// event is one arena slot. A slot is live while it sits in the heap
// (pos >= 0) and free otherwise; gen increments every time the slot is
// released, which invalidates any EventID minted for an earlier occupancy.
// Exactly one of fn and cb is set on a live slot.
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order
	fn  func()
	cb  Callback
	arg Arg
	gen uint32
	pos int32 // heap index, -1 while the slot is free or executing
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// value identifies no event. IDs are generation-counted: once the event has
// run or been cancelled its arena slot may be reused, and a stale ID for the
// old occupancy keeps reporting false from Cancel (no ABA confusion).
type EventID struct {
	slot int32 // 1-based arena index; 0 means "no event"
	gen  uint32
}

// Scheduler is the discrete-event engine. The zero value is not usable; call
// NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	arena   []event
	free    []int32 // stack of recyclable arena slots
	heap    []int32 // 4-ary min-heap of arena indices, ordered by (at, seq)
	stopped bool
	running bool

	// Kernel traffic counters, always on (two integer adds): the DES analog
	// of oprofile's interrupt-descriptor statistics. The observability layer
	// copies them out via Stats; sim cannot import obs (obs imports sim).
	scheduled uint64
	cancelled uint64
}

// Stats reports kernel traffic since construction: events scheduled and
// events removed by Cancel before dispatch.
func (s *Scheduler) Stats() (scheduled, cancelled uint64) {
	return s.scheduled, s.cancelled
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports how many events are currently scheduled.
func (s *Scheduler) Pending() int { return len(s.heap) }

// alloc claims an arena slot for an event at instant t and returns its
// index, ready for the caller to attach the callback form.
func (s *Scheduler) alloc(t Time) (int32, *event) {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.arena = append(s.arena, event{})
		idx = int32(len(s.arena) - 1)
	}
	ev := &s.arena[idx]
	ev.at = t
	ev.seq = s.seq
	s.seq++
	s.scheduled++
	return idx, ev
}

// At schedules fn to run at instant t. Scheduling in the past (t < Now) is a
// programming error in the model and returns an error; the event is not
// scheduled.
func (s *Scheduler) At(t Time, fn func()) (EventID, error) {
	if t < s.now {
		return EventID{}, fmt.Errorf("sim: schedule at %v before now %v", t, s.now)
	}
	if fn == nil {
		return EventID{}, errors.New("sim: schedule nil callback")
	}
	idx, ev := s.alloc(t)
	ev.fn = fn
	s.heapPush(idx)
	return EventID{slot: idx + 1, gen: ev.gen}, nil
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero so "run as soon as possible" is easy to express.
func (s *Scheduler) After(d time.Duration, fn func()) (EventID, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AtCall schedules cb.OnEvent(arg) at instant t. The context rides in the
// event's arena slot, so — unlike At with a capturing closure — steady-state
// scheduling performs zero allocations. Dispatch order is identical to At:
// the two forms share one (at, seq) sequence.
func (s *Scheduler) AtCall(t Time, cb Callback, arg Arg) (EventID, error) {
	if t < s.now {
		return EventID{}, fmt.Errorf("sim: schedule at %v before now %v", t, s.now)
	}
	if cb == nil {
		return EventID{}, errors.New("sim: schedule nil callback")
	}
	idx, ev := s.alloc(t)
	ev.cb = cb
	ev.arg = arg
	s.heapPush(idx)
	return EventID{slot: idx + 1, gen: ev.gen}, nil
}

// AfterCall schedules cb.OnEvent(arg) d after the current virtual time.
// Negative d is clamped to zero, mirroring After.
func (s *Scheduler) AfterCall(d time.Duration, cb Callback, arg Arg) (EventID, error) {
	if d < 0 {
		d = 0
	}
	return s.AtCall(s.now.Add(d), cb, arg)
}

// Cancel removes a scheduled event. Cancelling an event that already ran or
// was already cancelled is a no-op and reports false — including when its
// arena slot has since been reused by a newer event, which the generation
// counter detects.
func (s *Scheduler) Cancel(id EventID) bool {
	idx := id.slot - 1
	if idx < 0 || int(idx) >= len(s.arena) {
		return false
	}
	ev := &s.arena[idx]
	if ev.gen != id.gen || ev.pos < 0 {
		return false
	}
	s.heapRemove(ev.pos)
	s.release(idx)
	s.cancelled++
	return true
}

// release returns an arena slot to the free list. Bumping gen here is what
// invalidates outstanding EventIDs; clearing fn/cb/arg releases the
// callback's closure and context pointers to the collector.
func (s *Scheduler) release(idx int32) {
	ev := &s.arena[idx]
	ev.fn = nil
	ev.cb = nil
	ev.arg = Arg{}
	ev.pos = -1
	ev.gen++
	s.free = append(s.free, idx)
}

// Reset rewinds the scheduler to its post-NewScheduler state — clock at
// zero, queue empty, counters zeroed — while keeping the arena, free-list,
// and heap capacity, so a pooled scheduler re-runs a scenario without
// re-growing its slabs. EventIDs minted before the Reset must not be used
// afterwards: slots restart at generation zero, so a stale ID could collide
// with a new occupancy (holders reset alongside the scheduler, so none
// survive in practice). Must not be called from inside Run.
func (s *Scheduler) Reset() {
	s.now = 0
	s.seq = 0
	s.arena = s.arena[:0]
	s.free = s.free[:0]
	s.heap = s.heap[:0]
	s.stopped = false
	s.running = false
	s.scheduled = 0
	s.cancelled = 0
}

// Stop halts the simulation: the currently executing event finishes and Run
// returns ErrStopped. Safe to call from inside an event callback.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty. It returns ErrStopped if the
// run was halted by Stop.
func (s *Scheduler) Run() error {
	return s.run(func(Time) bool { return true })
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) error {
	err := s.run(func(t Time) bool { return t <= deadline })
	if err == nil && s.now < deadline {
		s.now = deadline
	}
	return err
}

func (s *Scheduler) run(keep func(Time) bool) error {
	if s.running {
		return errors.New("sim: Run re-entered from an event callback")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return ErrStopped
		}
		top := s.heap[0]
		at := s.arena[top].at
		if !keep(at) {
			return nil
		}
		s.popTop()
		fn := s.arena[top].fn
		cb := s.arena[top].cb
		arg := s.arena[top].arg
		s.release(top)
		s.now = at
		if fn != nil {
			fn()
		} else {
			cb.OnEvent(arg)
		}
	}
	return nil
}

// less orders arena indices by (at, seq). seq is unique, so the order is
// total and the dispatch sequence is independent of heap shape or arity.
func (s *Scheduler) less(a, b int32) bool {
	ea, eb := &s.arena[a], &s.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Scheduler) heapPush(idx int32) {
	s.heap = append(s.heap, idx)
	s.siftUp(int32(len(s.heap) - 1))
}

// popTop removes heap[0]. The caller still owns the arena slot and must
// release it after reading the callback.
func (s *Scheduler) popTop() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

// heapRemove deletes the element at heap position pos (cancellation path).
func (s *Scheduler) heapRemove(pos int32) {
	n := int32(len(s.heap)) - 1
	if pos != n {
		s.heap[pos] = s.heap[n]
		s.heap = s.heap[:n]
		if pos > 0 && s.less(s.heap[pos], s.heap[(pos-1)/4]) {
			s.siftUp(pos)
		} else {
			s.siftDown(pos)
		}
	} else {
		s.heap = s.heap[:n]
	}
}

func (s *Scheduler) siftUp(i int32) {
	h := s.heap
	moving := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(moving, h[parent]) {
			break
		}
		h[i] = h[parent]
		s.arena[h[i]].pos = i
		i = parent
	}
	h[i] = moving
	s.arena[moving].pos = i
}

func (s *Scheduler) siftDown(i int32) {
	h := s.heap
	n := int32(len(h))
	moving := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(h[c], h[best]) {
				best = c
			}
		}
		if !s.less(h[best], moving) {
			break
		}
		h[i] = h[best]
		s.arena[h[i]].pos = i
		i = best
	}
	h[i] = moving
	s.arena[moving].pos = i
}
