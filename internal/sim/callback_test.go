package sim

import (
	"testing"
	"time"
)

// recorderCB collects the Args it receives, tagged with the virtual time of
// delivery, so tests can assert both payload fidelity and dispatch order.
type recorderCB struct {
	s    *Scheduler
	args []Arg
	ats  []Time
}

func (r *recorderCB) OnEvent(a Arg) {
	r.args = append(r.args, a)
	r.ats = append(r.ats, r.s.Now())
}

// TestAtCallDeliversArg pins the Arg round trip: every field scheduled is
// the field delivered, at the scheduled instant.
func TestAtCallDeliversArg(t *testing.T) {
	s := NewScheduler()
	rec := &recorderCB{s: s}
	p := &struct{ x int }{x: 42}
	want := Arg{Op: 7, I0: -3, I1: 1 << 40, P0: p, P1: "tag"}
	if _, err := s.AtCall(25, rec, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.args) != 1 {
		t.Fatalf("%d deliveries, want 1", len(rec.args))
	}
	if rec.args[0] != want {
		t.Errorf("Arg = %+v, want %+v", rec.args[0], want)
	}
	if rec.ats[0] != 25 {
		t.Errorf("delivered at %v, want 25ns", rec.ats[0])
	}
}

// TestAtCallInterleavesWithAt proves the two scheduling forms share one
// (at, seq) order: alternating At and AtCall at colliding timestamps fires
// in exact schedule order.
func TestAtCallInterleavesWithAt(t *testing.T) {
	s := NewScheduler()
	rec := &recorderCB{s: s}
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if i%2 == 0 {
			if _, err := s.At(50, func() { order = append(order, i) }); err != nil {
				t.Fatal(err)
			}
		} else {
			cb := funcCB(func() { order = append(order, i) })
			if _, err := s.AtCall(50, cb, Arg{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = rec
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("dispatch order %v, want ascending schedule order", order)
		}
	}
}

// TestAtCallErrors mirrors At's contract: scheduling in the past or with a
// nil callback is rejected without touching the queue.
func TestAtCallErrors(t *testing.T) {
	s := NewScheduler()
	rec := &recorderCB{s: s}
	if _, err := s.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AtCall(5, rec, Arg{}); err == nil {
		t.Error("AtCall in the past succeeded")
	}
	if _, err := s.AtCall(20, nil, Arg{}); err == nil {
		t.Error("AtCall with nil callback succeeded")
	}
	if s.Pending() != 0 {
		t.Errorf("%d events pending after rejected schedules", s.Pending())
	}
}

// TestAtCallCancel covers cancellation of the typed form.
func TestAtCallCancel(t *testing.T) {
	s := NewScheduler()
	rec := &recorderCB{s: s}
	id, err := s.AfterCall(time.Millisecond, rec, Arg{Op: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(id) {
		t.Fatal("Cancel of pending AtCall event reported false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.args) != 0 {
		t.Errorf("cancelled event delivered %d times", len(rec.args))
	}
}

// TestDoneInvoke pins the zero-value contract: a zero Done is a no-op, Call
// adapts a func, and Call(nil) is the zero Done.
func TestDoneInvoke(t *testing.T) {
	Done{}.Invoke() // must not panic
	ran := false
	Call(func() { ran = true }).Invoke()
	if !ran {
		t.Error("Call(fn).Invoke() did not run fn")
	}
	if d := Call(nil); d.CB != nil {
		t.Error("Call(nil) is not the zero Done")
	}
}

// TestSteadyStateAtCallZeroAlloc pins the typed form's reason to exist:
// schedule→dispatch with context in the Arg performs zero allocations once
// the arena is warm — including pointer payloads in P0/P1.
func TestSteadyStateAtCallZeroAlloc(t *testing.T) {
	s := NewScheduler()
	sink := &recorderCB{s: s}
	sink.args = make([]Arg, 0, 4096)
	sink.ats = make([]Time, 0, 4096)
	payload := &struct{ n int }{n: 1}
	for i := 0; i < 64; i++ {
		if _, err := s.AfterCall(time.Microsecond, sink, Arg{I0: int64(i), P0: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		sink.args = sink.args[:0]
		sink.ats = sink.ats[:0]
		for i := 0; i < 16; i++ {
			if _, err := s.AfterCall(time.Microsecond, sink, Arg{Op: i, I0: int64(i), P0: payload}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("steady-state AtCall schedule+dispatch allocates %v per run, want 0", got)
	}
}

// TestResetReplaysIdentically runs a workload, Resets, and re-runs it: the
// second pass must observe the same clock, sequence of deliveries, and
// kernel counters as a fresh scheduler — the contract arena reuse is built
// on.
func TestResetReplaysIdentically(t *testing.T) {
	workload := func(s *Scheduler) ([]Time, uint64, uint64) {
		rec := &recorderCB{s: s}
		for i := 0; i < 20; i++ {
			if _, err := s.AtCall(Time(i%5)*10, rec, Arg{Op: i}); err != nil {
				t.Fatal(err)
			}
		}
		id, err := s.At(100, func() {})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Cancel(id) {
			t.Fatal("Cancel reported false")
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		sched, canc := s.Stats()
		return rec.ats, sched, canc
	}

	fresh := NewScheduler()
	wantAts, wantSched, wantCanc := workload(fresh)

	reused := NewScheduler()
	workload(reused)
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 {
		t.Fatalf("post-Reset: now=%v pending=%d, want 0/0", reused.Now(), reused.Pending())
	}
	if sched, canc := reused.Stats(); sched != 0 || canc != 0 {
		t.Fatalf("post-Reset stats = (%d, %d), want zeroed", sched, canc)
	}
	gotAts, gotSched, gotCanc := workload(reused)
	if gotSched != wantSched || gotCanc != wantCanc {
		t.Errorf("replay stats = (%d, %d), fresh = (%d, %d)", gotSched, gotCanc, wantSched, wantCanc)
	}
	if len(gotAts) != len(wantAts) {
		t.Fatalf("replay delivered %d events, fresh %d", len(gotAts), len(wantAts))
	}
	for i := range gotAts {
		if gotAts[i] != wantAts[i] {
			t.Fatalf("delivery %d at %v on reuse, %v fresh", i, gotAts[i], wantAts[i])
		}
	}
}

// TestResetReuseZeroAlloc pins the arena-reuse payoff: once a scheduler has
// run one workload, Reset + an identical workload allocates nothing.
func TestResetReuseZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	workload := func() {
		for i := 0; i < 32; i++ {
			if _, err := s.After(time.Duration(i)*time.Microsecond, fn); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	workload()
	got := testing.AllocsPerRun(100, func() {
		s.Reset()
		workload()
	})
	if got != 0 {
		t.Errorf("Reset+replay allocates %v per run, want 0", got)
	}
}
