package jsonlite

import (
	"encoding/json"
	"testing"
)

// FuzzParse: never panic; whenever encoding/json accepts a document that we
// also accept, the two must agree structurally (spot-checked by re-encoding
// through the stdlib).
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"a":[1,2,3],"b":"x"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`12.5e3`))
	f.Add([]byte(`"A😀"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ours, err := Parse(data)
		if err != nil {
			return
		}
		// Anything we accept must be encodable by the stdlib (i.e., a sane
		// value tree with no cycles or exotic types).
		if _, err := json.Marshal(ours); err != nil {
			t.Fatalf("accepted value not re-encodable: %v", err)
		}
	})
}
