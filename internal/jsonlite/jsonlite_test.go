package jsonlite

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderObject(t *testing.T) {
	b := NewBuilder(64)
	b.BeginObject().
		Key("sensor").Str("barometer").
		Key("value").Num(1013.25).
		Key("n").Int(42).
		Key("ok").Bool(true).
		Key("ref").Null().
		EndObject()
	got, err := b.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	want := `{"sensor":"barometer","value":1013.25,"n":42,"ok":true,"ref":null}`
	if string(got) != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
	// The output must also satisfy the stdlib parser.
	var v any
	if err := json.Unmarshal(got, &v); err != nil {
		t.Errorf("stdlib rejects output: %v", err)
	}
}

func TestBuilderNestedArrays(t *testing.T) {
	b := NewBuilder(0)
	b.BeginObject().Key("xs").BeginArray().Int(1).Int(2).BeginArray().Int(3).EndArray().EndArray().EndObject()
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"xs":[1,2,[3]]}` {
		t.Errorf("got %s", got)
	}
}

func TestBuilderEscapes(t *testing.T) {
	b := NewBuilder(0)
	b.Str("a\"b\\c\nd\te\rf\x01")
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	var v string
	if err := json.Unmarshal(got, &v); err != nil {
		t.Fatalf("stdlib rejects escaped string %s: %v", got, err)
	}
	if v != "a\"b\\c\nd\te\rf\x01" {
		t.Errorf("round trip = %q", v)
	}
}

func TestBuilderStructuralErrors(t *testing.T) {
	b := NewBuilder(0)
	b.EndObject()
	if _, err := b.Bytes(); err == nil {
		t.Error("stray EndObject accepted")
	}
	b = NewBuilder(0)
	b.BeginObject()
	if _, err := b.Bytes(); err == nil {
		t.Error("unclosed object accepted")
	}
	b = NewBuilder(0)
	b.BeginArray().EndObject()
	if _, err := b.Bytes(); err == nil {
		t.Error("mismatched close accepted")
	}
	b = NewBuilder(0)
	b.Key("k")
	if _, err := b.Bytes(); err == nil {
		t.Error("Key outside object accepted")
	}
	b = NewBuilder(0)
	b.Num(math.NaN())
	if _, err := b.Bytes(); err == nil {
		t.Error("NaN accepted")
	}
	b = NewBuilder(0)
	b.BeginArray().EndArray().EndArray()
	if _, err := b.Bytes(); err == nil {
		t.Error("extra EndArray accepted")
	}
	if b.Err() == nil {
		t.Error("Err() nil after structural error")
	}
}

func TestParseScalars(t *testing.T) {
	cases := map[string]any{
		`42`:     42.0,
		`-3.5e2`: -350.0,
		`"hi"`:   "hi",
		`true`:   true,
		`false`:  false,
		`null`:   nil,
		` 7 `:    7.0,
		`"A"`:    "A",
	}
	for in, want := range cases {
		got, err := Parse([]byte(in))
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseSurrogatePair(t *testing.T) {
	got, err := Parse([]byte(`"😀"`))
	if err != nil {
		t.Fatal(err)
	}
	if got != "😀" {
		t.Errorf("got %q", got)
	}
	// Lone surrogate degrades to the replacement rune, like encoding/json.
	got, err = Parse([]byte(`"\ud83d"`))
	if err != nil {
		t.Fatal(err)
	}
	if got != "�" {
		t.Errorf("lone surrogate = %q", got)
	}
}

func TestParseStructures(t *testing.T) {
	got, err := Parse([]byte(`{"a":[1,2,{"b":null}],"c":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"a": []any{1.0, 2.0, map[string]any{"b": nil}},
		"c": "x",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v", got)
	}
	empty, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.(map[string]any)) != 0 {
		t.Errorf("empty object = %#v", empty)
	}
	arr, err := Parse([]byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.([]any)) != 0 {
		t.Errorf("empty array = %#v", arr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `{`, `[`, `{"a"}`, `{"a":}`, `{"a":1,}`, `[1,]`, `"unterminated`,
		`tru`, `nul`, `{1:2}`, `[1 2]`, `42x`, `"\q"`, `"\u12"`, `--1`,
		`{"a":1}extra`,
	}
	for _, in := range bad {
		if _, err := Parse([]byte(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("[", 100) + strings.Repeat("]", 100)
	if _, err := Parse([]byte(deep)); !errors.Is(err, ErrSyntax) {
		t.Errorf("deep nesting err = %v, want ErrSyntax", err)
	}
}

// Property: anything the builder emits, both our parser and encoding/json
// accept, and the numeric/string content survives the round trip.
func TestPropertyBuilderParserAgree(t *testing.T) {
	f := func(key string, s string, n int32, flag bool) bool {
		b := NewBuilder(0)
		b.BeginObject().
			Key("k").Str(key).
			Key("s").Str(s).
			Key("n").Int(int64(n)).
			Key("f").Bool(flag).
			EndObject()
		raw, err := b.Bytes()
		if err != nil {
			return false
		}
		ours, err := Parse(raw)
		if err != nil {
			return false
		}
		var std map[string]any
		if err := json.Unmarshal(raw, &std); err != nil {
			return false
		}
		m, ok := ours.(map[string]any)
		if !ok {
			return false
		}
		return m["n"] == float64(n) && m["f"] == flag && reflect.DeepEqual(m["s"], std["s"])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse never panics on arbitrary input and agrees with
// encoding/json on validity for inputs encoding/json accepts as a value.
func TestPropertyParseRobust(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Parse(b) //nolint:errcheck // only exercising for panics
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAgreesWithStdlibOnValid(t *testing.T) {
	inputs := []string{
		`{"a":1.5,"b":[true,null,"x"],"c":{"d":-2e3}}`,
		`[0.1, 2, 3e-2]`,
		`"plain"`,
	}
	for _, in := range inputs {
		ours, err := Parse([]byte(in))
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		var std any
		if err := json.Unmarshal([]byte(in), &std); err != nil {
			t.Fatalf("stdlib rejects %q: %v", in, err)
		}
		if !reflect.DeepEqual(ours, std) {
			t.Errorf("Parse(%q) = %#v, stdlib %#v", in, ours, std)
		}
	}
}
