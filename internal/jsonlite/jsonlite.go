// Package jsonlite is an allocation-frugal JSON serializer and parser in the
// spirit of ArduinoJson — the library the A3 workload wraps sensor readings
// with before shipping them upstream.
//
// The builder writes directly into a growable buffer with explicit
// Object/Array scopes; the parser is a small recursive-descent reader that
// produces map[string]any / []any / float64 / string / bool / nil. Both ends
// are exercised by the workloads (A3 formats, A4/A5 build device reports).
package jsonlite

import (
	"errors"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// Builder incrementally serializes a JSON document.
type Builder struct {
	buf       []byte
	stack     []byte // '{' or '[' per open scope
	needComma bool
	err       error
}

// NewBuilder returns a builder with the given initial capacity.
func NewBuilder(capacity int) *Builder {
	return &Builder{buf: make([]byte, 0, capacity)}
}

// Err reports the first structural error encountered.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(msg string) {
	if b.err == nil {
		b.err = errors.New("jsonlite: " + msg)
	}
}

func (b *Builder) prefix() {
	if b.needComma {
		b.buf = append(b.buf, ',')
	}
	b.needComma = true
}

// BeginObject opens a JSON object value.
func (b *Builder) BeginObject() *Builder {
	b.prefix()
	b.buf = append(b.buf, '{')
	b.stack = append(b.stack, '{')
	b.needComma = false
	return b
}

// EndObject closes the innermost object.
func (b *Builder) EndObject() *Builder {
	if len(b.stack) == 0 || b.stack[len(b.stack)-1] != '{' {
		b.fail("EndObject without matching BeginObject")
		return b
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.buf = append(b.buf, '}')
	b.needComma = true
	return b
}

// BeginArray opens a JSON array value.
func (b *Builder) BeginArray() *Builder {
	b.prefix()
	b.buf = append(b.buf, '[')
	b.stack = append(b.stack, '[')
	b.needComma = false
	return b
}

// EndArray closes the innermost array.
func (b *Builder) EndArray() *Builder {
	if len(b.stack) == 0 || b.stack[len(b.stack)-1] != '[' {
		b.fail("EndArray without matching BeginArray")
		return b
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.buf = append(b.buf, ']')
	b.needComma = true
	return b
}

// Key writes an object key; the next value call completes the member.
func (b *Builder) Key(k string) *Builder {
	if len(b.stack) == 0 || b.stack[len(b.stack)-1] != '{' {
		b.fail("Key outside object")
		return b
	}
	b.prefix()
	b.buf = appendQuoted(b.buf, k)
	b.buf = append(b.buf, ':')
	b.needComma = false
	return b
}

// Str writes a string value.
func (b *Builder) Str(v string) *Builder {
	b.prefix()
	b.buf = appendQuoted(b.buf, v)
	return b
}

// Num writes a numeric value. Non-finite floats are rejected.
func (b *Builder) Num(v float64) *Builder {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		b.fail("non-finite number")
		return b
	}
	b.prefix()
	b.buf = strconv.AppendFloat(b.buf, v, 'g', -1, 64)
	return b
}

// Int writes an integer value without float formatting.
func (b *Builder) Int(v int64) *Builder {
	b.prefix()
	b.buf = strconv.AppendInt(b.buf, v, 10)
	return b
}

// Bool writes a boolean value.
func (b *Builder) Bool(v bool) *Builder {
	b.prefix()
	if v {
		b.buf = append(b.buf, "true"...)
	} else {
		b.buf = append(b.buf, "false"...)
	}
	return b
}

// Null writes a null value.
func (b *Builder) Null() *Builder {
	b.prefix()
	b.buf = append(b.buf, "null"...)
	return b
}

// Bytes returns the finished document. All scopes must be closed.
func (b *Builder) Bytes() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("jsonlite: %d unclosed scopes", len(b.stack))
	}
	return b.buf, nil
}

func appendQuoted(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for _, r := range s {
		switch r {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			if r < 0x20 {
				buf = append(buf, fmt.Sprintf("\\u%04x", r)...)
			} else {
				buf = utf8.AppendRune(buf, r)
			}
		}
	}
	return append(buf, '"')
}

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("jsonlite: syntax error")

// Parse reads one JSON value from b (with optional surrounding whitespace)
// and returns it as map[string]any, []any, float64, string, bool, or nil.
func Parse(b []byte) (any, error) {
	p := &parser{in: b}
	p.ws()
	v, err := p.value(0)
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing bytes at %d", ErrSyntax, p.pos)
	}
	return v, nil
}

const maxDepth = 64

type parser struct {
	in  []byte
	pos int
}

func (p *parser) ws() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) errAt(msg string) error {
	return fmt.Errorf("%w: %s at %d", ErrSyntax, msg, p.pos)
}

func (p *parser) value(depth int) (any, error) {
	if depth > maxDepth {
		return nil, p.errAt("nesting too deep")
	}
	if p.pos >= len(p.in) {
		return nil, p.errAt("unexpected end")
	}
	switch c := p.in[p.pos]; {
	case c == '{':
		return p.object(depth)
	case c == '[':
		return p.array(depth)
	case c == '"':
		return p.str()
	case c == 't':
		return p.lit("true", true)
	case c == 'f':
		return p.lit("false", false)
	case c == 'n':
		return p.lit("null", nil)
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	default:
		return nil, p.errAt(fmt.Sprintf("unexpected byte %q", c))
	}
}

func (p *parser) lit(word string, v any) (any, error) {
	if p.pos+len(word) > len(p.in) || string(p.in[p.pos:p.pos+len(word)]) != word {
		return nil, p.errAt("bad literal")
	}
	p.pos += len(word)
	return v, nil
}

func (p *parser) number() (any, error) {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	f, err := strconv.ParseFloat(string(p.in[start:p.pos]), 64)
	if err != nil {
		return nil, p.errAt("bad number")
	}
	return f, nil
}

func (p *parser) str() (string, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '"' {
		return "", p.errAt("expected string")
	}
	p.pos++
	var out []byte
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c == '"':
			p.pos++
			return string(out), nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return "", p.errAt("unterminated escape")
			}
			switch e := p.in[p.pos]; e {
			case '"', '\\', '/':
				out = append(out, e)
				p.pos++
			case 'n':
				out = append(out, '\n')
				p.pos++
			case 'r':
				out = append(out, '\r')
				p.pos++
			case 't':
				out = append(out, '\t')
				p.pos++
			case 'b':
				out = append(out, '\b')
				p.pos++
			case 'f':
				out = append(out, '\f')
				p.pos++
			case 'u':
				r, err := p.unicodeEscape()
				if err != nil {
					return "", err
				}
				out = utf8.AppendRune(out, r)
			default:
				return "", p.errAt("bad escape")
			}
		default:
			out = append(out, c)
			p.pos++
		}
	}
	return "", p.errAt("unterminated string")
}

func (p *parser) unicodeEscape() (rune, error) {
	// p.pos is at the 'u'.
	if p.pos+5 > len(p.in) {
		return 0, p.errAt("short \\u escape")
	}
	v, err := strconv.ParseUint(string(p.in[p.pos+1:p.pos+5]), 16, 32)
	if err != nil {
		return 0, p.errAt("bad \\u escape")
	}
	p.pos += 5
	r := rune(v)
	if utf16.IsSurrogate(r) && p.pos+6 <= len(p.in) && p.in[p.pos] == '\\' && p.in[p.pos+1] == 'u' {
		v2, err := strconv.ParseUint(string(p.in[p.pos+2:p.pos+6]), 16, 32)
		if err == nil {
			if combined := utf16.DecodeRune(r, rune(v2)); combined != utf8.RuneError {
				p.pos += 6
				return combined, nil
			}
		}
	}
	if utf16.IsSurrogate(r) {
		return utf8.RuneError, nil
	}
	return r, nil
}

func (p *parser) object(depth int) (any, error) {
	p.pos++ // '{'
	out := make(map[string]any)
	p.ws()
	if p.pos < len(p.in) && p.in[p.pos] == '}' {
		p.pos++
		return out, nil
	}
	for {
		p.ws()
		k, err := p.str()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.pos >= len(p.in) || p.in[p.pos] != ':' {
			return nil, p.errAt("expected ':'")
		}
		p.pos++
		p.ws()
		v, err := p.value(depth + 1)
		if err != nil {
			return nil, err
		}
		out[k] = v
		p.ws()
		if p.pos >= len(p.in) {
			return nil, p.errAt("unterminated object")
		}
		switch p.in[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return out, nil
		default:
			return nil, p.errAt("expected ',' or '}'")
		}
	}
}

func (p *parser) array(depth int) (any, error) {
	p.pos++ // '['
	out := []any{}
	p.ws()
	if p.pos < len(p.in) && p.in[p.pos] == ']' {
		p.pos++
		return out, nil
	}
	for {
		p.ws()
		v, err := p.value(depth + 1)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.ws()
		if p.pos >= len(p.in) {
			return nil, p.errAt("unterminated array")
		}
		switch p.in[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return out, nil
		default:
			return nil, p.errAt("expected ',' or ']'")
		}
	}
}
