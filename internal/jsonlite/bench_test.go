package jsonlite

import "testing"

// BenchmarkBuildReport measures building an M2X-sized update document.
func BenchmarkBuildReport(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(1024)
		bd.BeginObject().Key("device").Str("hub").Key("streams").BeginArray()
		for s := 0; s < 5; s++ {
			bd.BeginObject().
				Key("name").Str("stream").
				Key("count").Int(1000).
				Key("mean").Num(101325.25).
				Key("stddev").Num(2.5).
				EndObject()
		}
		bd.EndArray().EndObject()
		if _, err := bd.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseReport(b *testing.B) {
	bd := NewBuilder(1024)
	bd.BeginObject().Key("xs").BeginArray()
	for i := 0; i < 1000; i++ {
		bd.Num(float64(i) / 3)
	}
	bd.EndArray().EndObject()
	doc, err := bd.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(doc); err != nil {
			b.Fatal(err)
		}
	}
}
