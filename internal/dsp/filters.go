package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Biquad is a second-order IIR filter section (direct form I).
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	x1, x2     float64
	y1, y2     float64
}

// NewBandpass designs a constant-skirt bandpass biquad (RBJ audio-EQ
// cookbook) centered at centerHz with the given quality factor.
func NewBandpass(sampleRateHz, centerHz, q float64) (*Biquad, error) {
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("dsp: sample rate %v", sampleRateHz)
	}
	if centerHz <= 0 || centerHz >= sampleRateHz/2 {
		return nil, fmt.Errorf("dsp: center %v Hz outside (0, %v)", centerHz, sampleRateHz/2)
	}
	if q <= 0 {
		return nil, fmt.Errorf("dsp: q %v", q)
	}
	w0 := 2 * math.Pi * centerHz / sampleRateHz
	alpha := math.Sin(w0) / (2 * q)
	a0 := 1 + alpha
	return &Biquad{
		b0: alpha / a0,
		b1: 0,
		b2: -alpha / a0,
		a1: -2 * math.Cos(w0) / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewLowpassBiquad designs a second-order Butterworth-style low-pass biquad
// with the given cutoff.
func NewLowpassBiquad(sampleRateHz, cutoffHz float64) (*Biquad, error) {
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("dsp: sample rate %v", sampleRateHz)
	}
	if cutoffHz <= 0 || cutoffHz >= sampleRateHz/2 {
		return nil, fmt.Errorf("dsp: cutoff %v Hz outside (0, %v)", cutoffHz, sampleRateHz/2)
	}
	w0 := 2 * math.Pi * cutoffHz / sampleRateHz
	q := 1 / math.Sqrt2
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cosw) / 2 / a0,
		b1: (1 - cosw) / a0,
		b2: (1 - cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// Step feeds one sample through the filter.
func (f *Biquad) Step(x float64) float64 {
	y := f.b0*x + f.b1*f.x1 + f.b2*f.x2 - f.a1*f.y1 - f.a2*f.y2
	f.x2, f.x1 = f.x1, x
	f.y2, f.y1 = f.y1, y
	return y
}

// Apply filters a whole signal, returning a new slice. The filter's state
// advances; use Reset between independent signals.
func (f *Biquad) Apply(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.Step(x)
	}
	return out
}

// Reset clears the filter's delay line.
func (f *Biquad) Reset() {
	f.x1, f.x2, f.y1, f.y2 = 0, 0, 0, 0
}

// Goertzel computes the signal power at one target frequency — the classic
// single-bin DFT used by tone detectors, far cheaper than a full FFT.
func Goertzel(xs []float64, sampleRateHz, targetHz float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("dsp: goertzel over empty signal")
	}
	if sampleRateHz <= 0 || targetHz < 0 || targetHz > sampleRateHz/2 {
		return 0, fmt.Errorf("dsp: goertzel target %v Hz at rate %v", targetHz, sampleRateHz)
	}
	k := 0.5 + float64(len(xs))*targetHz/sampleRateHz
	w := 2 * math.Pi * math.Floor(k) / float64(len(xs))
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range xs {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(len(xs)), nil
}

// Autocorrelation returns the biased autocorrelation of xs for lags
// [0, maxLag], normalized so lag 0 equals 1 (or all zeros for a flat
// signal). Used for pitch/period estimation.
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	if maxLag < 0 || maxLag >= len(xs) {
		return nil, fmt.Errorf("dsp: maxLag %d for %d samples", maxLag, len(xs))
	}
	centered := Detrend(xs)
	out := make([]float64, maxLag+1)
	var r0 float64
	for _, x := range centered {
		r0 += x * x
	}
	if r0 == 0 {
		return out, nil
	}
	for lag := 0; lag <= maxLag; lag++ {
		var sum float64
		for i := 0; i+lag < len(centered); i++ {
			sum += centered[i] * centered[i+lag]
		}
		out[lag] = sum / r0
	}
	return out, nil
}

// DominantPeriod estimates a signal's period in samples from the highest
// autocorrelation peak in [minLag, maxLag]. Returns 0 when no positive peak
// exists in the range.
func DominantPeriod(xs []float64, minLag, maxLag int) (int, error) {
	if minLag < 1 || maxLag < minLag {
		return 0, fmt.Errorf("dsp: lag range [%d, %d]", minLag, maxLag)
	}
	ac, err := Autocorrelation(xs, maxLag)
	if err != nil {
		return 0, err
	}
	best, bestLag := 0.0, 0
	for lag := minLag; lag <= maxLag; lag++ {
		if ac[lag] > best {
			best, bestLag = ac[lag], lag
		}
	}
	return bestLag, nil
}

// MedianFilter applies a sliding median of the given width (clamped to odd,
// minimum 1); edges use the available neighborhood. Medians reject impulse
// noise that moving averages smear.
func MedianFilter(xs []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(xs))
	buf := make([]float64, 0, width)
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		buf = append(buf[:0], xs[lo:hi]...)
		sort.Float64s(buf)
		out[i] = buf[len(buf)/2]
	}
	return out
}
