// Package dsp provides the signal-processing primitives shared by the
// workload implementations: filters, spectral analysis, peak detection, and
// the short-term/long-term average ratio used by seismic triggers.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// RMS returns the root mean square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// MovingAverage returns xs smoothed with a centered window of the given
// (odd or even) width; edges use the available neighborhood.
func MovingAverage(xs []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	out := make([]float64, len(xs))
	half := width / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = Mean(xs[lo:hi])
	}
	return out
}

// LowPass applies a single-pole IIR low-pass filter with smoothing factor
// alpha in (0, 1]: out[i] = alpha*xs[i] + (1-alpha)*out[i-1].
func LowPass(xs []float64, alpha float64) ([]float64, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dsp: low-pass alpha %v outside (0,1]", alpha)
	}
	out := make([]float64, len(xs))
	var prev float64
	for i, x := range xs {
		if i == 0 {
			prev = x
		}
		prev = alpha*x + (1-alpha)*prev
		out[i] = prev
	}
	return out, nil
}

// Detrend subtracts the mean from xs.
func Detrend(xs []float64) []float64 {
	m := Mean(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x - m
	}
	return out
}

// FindPeaks returns the indices of local maxima that rise at least
// minHeight above zero and are at least minDistance samples apart. When two
// candidate peaks are closer than minDistance, the taller one wins.
func FindPeaks(xs []float64, minHeight float64, minDistance int) []int {
	if minDistance < 1 {
		minDistance = 1
	}
	var peaks []int
	for i := 1; i < len(xs)-1; i++ {
		if xs[i] < minHeight {
			continue
		}
		if xs[i] < xs[i-1] || xs[i] <= xs[i+1] {
			continue
		}
		if n := len(peaks); n > 0 && i-peaks[n-1] < minDistance {
			if xs[i] > xs[peaks[n-1]] {
				peaks[n-1] = i
			}
			continue
		}
		peaks = append(peaks, i)
	}
	return peaks
}

// ZeroCrossingsUp counts positive-going zero crossings of xs.
func ZeroCrossingsUp(xs []float64) int {
	count := 0
	for i := 1; i < len(xs); i++ {
		if xs[i-1] <= 0 && xs[i] > 0 {
			count++
		}
	}
	return count
}

// STALTA computes the classic short-term-average / long-term-average ratio
// trigger used by earthquake detectors: for each sample, the mean absolute
// amplitude over the trailing sta window divided by that over the trailing
// lta window (lta > sta). The first lta samples are zero (warm-up).
func STALTA(xs []float64, sta, lta int) ([]float64, error) {
	if sta < 1 || lta <= sta {
		return nil, fmt.Errorf("dsp: STALTA windows sta=%d lta=%d, want 1 <= sta < lta", sta, lta)
	}
	abs := make([]float64, len(xs))
	for i, x := range xs {
		abs[i] = math.Abs(x)
	}
	out := make([]float64, len(xs))
	var staSum, ltaSum float64
	for i := range abs {
		staSum += abs[i]
		ltaSum += abs[i]
		if i >= sta {
			staSum -= abs[i-sta]
		}
		if i >= lta {
			ltaSum -= abs[i-lta]
		}
		if i >= lta {
			ltaAvg := ltaSum / float64(lta)
			if ltaAvg > 1e-12 {
				out[i] = (staSum / float64(sta)) / ltaAvg
			}
		}
	}
	return out, nil
}

// FFT computes the in-order discrete Fourier transform of xs using an
// iterative radix-2 Cooley-Tukey algorithm. len(xs) must be a power of two.
func FFT(xs []complex128) ([]complex128, error) {
	n := len(xs)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, xs)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			out[i], out[j] = out[j], out[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := out[i+j]
				v := out[i+j+length/2] * w
				out[i+j] = u + v
				out[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return out, nil
}

// PowerSpectrum returns |FFT(xs)|² of a real signal, length n/2+1 bins.
// len(xs) must be a power of two.
func PowerSpectrum(xs []float64) ([]float64, error) {
	cs := make([]complex128, len(xs))
	for i, x := range xs {
		cs[i] = complex(x, 0)
	}
	fs, err := FFT(cs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs)/2+1)
	for i := range out {
		out[i] = real(fs[i])*real(fs[i]) + imag(fs[i])*imag(fs[i])
	}
	return out, nil
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return out
}

// DominantBin returns the index of the largest element of spectrum,
// ignoring bin 0 (DC). It returns 0 for degenerate inputs.
func DominantBin(spectrum []float64) int {
	best, bestI := math.Inf(-1), 0
	for i := 1; i < len(spectrum); i++ {
		if spectrum[i] > best {
			best, bestI = spectrum[i], i
		}
	}
	return bestI
}
