package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdRMS(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); !almost(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Std(xs); !almost(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if got := RMS([]float64{3, 4}); !almost(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || RMS(nil) != 0 {
		t.Error("empty-slice statistics not zero")
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0, 10}
	out := MovingAverage(xs, 3)
	if len(out) != len(xs) {
		t.Fatalf("length %d", len(out))
	}
	for i := 1; i < len(out)-1; i++ {
		if out[i] < 2 || out[i] > 8 {
			t.Errorf("out[%d] = %v, want smoothed toward 5", i, out[i])
		}
	}
	// Width 1 (and clamped 0) is identity.
	id := MovingAverage(xs, 0)
	for i := range xs {
		if id[i] != xs[i] {
			t.Errorf("width-1 not identity at %d", i)
		}
	}
}

func TestLowPassValidatesAlpha(t *testing.T) {
	if _, err := LowPass(nil, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := LowPass(nil, 1.5); err == nil {
		t.Error("alpha 1.5 accepted")
	}
	out, err := LowPass([]float64{1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 1 {
			t.Errorf("alpha=1 not identity: %v", out)
		}
	}
}

func TestLowPassAttenuatesAlternation(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	out, err := LowPass(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMS(out[10:]); r > 0.2 {
		t.Errorf("high-frequency RMS after low-pass = %v, want < 0.2", r)
	}
}

func TestDetrendZeroMean(t *testing.T) {
	out := Detrend([]float64{5, 6, 7})
	if got := Mean(out); !almost(got, 0, 1e-12) {
		t.Errorf("mean after detrend = %v", got)
	}
}

func TestFindPeaksBasic(t *testing.T) {
	xs := []float64{0, 1, 0, 0, 3, 0, 0, 2, 0}
	got := FindPeaks(xs, 0.5, 1)
	want := []int{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("peaks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peaks = %v, want %v", got, want)
		}
	}
}

func TestFindPeaksMinHeightAndDistance(t *testing.T) {
	xs := []float64{0, 1, 0, 3, 0, 0.2, 0}
	if got := FindPeaks(xs, 2, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("height-filtered peaks = %v, want [3]", got)
	}
	// Peaks at 1 and 3 are 2 apart; with minDistance 3 the taller wins.
	if got := FindPeaks(xs, 0.5, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("distance-filtered peaks = %v, want [3]", got)
	}
}

func TestZeroCrossingsUp(t *testing.T) {
	xs := []float64{-1, 1, -1, 1, 1, -1}
	if got := ZeroCrossingsUp(xs); got != 2 {
		t.Errorf("ZeroCrossingsUp = %d, want 2", got)
	}
}

func TestSTALTAValidates(t *testing.T) {
	if _, err := STALTA(nil, 0, 10); err == nil {
		t.Error("sta=0 accepted")
	}
	if _, err := STALTA(nil, 10, 10); err == nil {
		t.Error("lta==sta accepted")
	}
}

func TestSTALTATriggersOnBurst(t *testing.T) {
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = 1 // quiescent
		if i >= 400 && i < 450 {
			xs[i] = 20 // burst
		}
	}
	ratio, err := STALTA(xs, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	var before, during float64
	for i := 300; i < 390; i++ {
		before = math.Max(before, ratio[i])
	}
	for i := 405; i < 450; i++ {
		during = math.Max(during, ratio[i])
	}
	if before > 1.5 {
		t.Errorf("quiescent ratio = %v, want near 1", before)
	}
	if during < 3 {
		t.Errorf("burst ratio = %v, want >= 3", during)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err == nil {
		t.Error("length 3 accepted")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	xs := make([]complex128, 8)
	xs[0] = 1
	out, err := FFT(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if !almost(real(v), 1, 1e-9) || !almost(imag(v), 0, 1e-9) {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSinePeak(t *testing.T) {
	const n = 64
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(math.Sin(2*math.Pi*5*float64(i)/n), 0)
	}
	out, err := FFT(xs)
	if err != nil {
		t.Fatal(err)
	}
	best, bestI := 0.0, 0
	for i := 1; i < n/2; i++ {
		if m := cmplx.Abs(out[i]); m > best {
			best, bestI = m, i
		}
	}
	if bestI != 5 {
		t.Errorf("dominant bin = %d, want 5", bestI)
	}
}

func TestPowerSpectrumDominantBin(t *testing.T) {
	const n = 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * 9 * float64(i) / n)
	}
	ps, err := PowerSpectrum(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != n/2+1 {
		t.Fatalf("spectrum length = %d, want %d", len(ps), n/2+1)
	}
	if got := DominantBin(ps); got != 9 {
		t.Errorf("DominantBin = %d, want 9", got)
	}
}

func TestHammingShape(t *testing.T) {
	w := Hamming(11)
	if !almost(w[5], 1, 1e-9) {
		t.Errorf("center = %v, want 1", w[5])
	}
	if w[0] > 0.1 || !almost(w[0], w[10], 1e-12) {
		t.Errorf("edges = %v, %v", w[0], w[10])
	}
	if got := Hamming(1); got[0] != 1 {
		t.Errorf("Hamming(1) = %v", got)
	}
}

// Property: FFT preserves energy (Parseval): sum|x|² == sum|X|²/N.
func TestPropertyFFTParseval(t *testing.T) {
	f := func(vals []float64) bool {
		n := 1
		for n < len(vals) {
			n <<= 1
		}
		if n > 256 {
			n = 256
		}
		xs := make([]complex128, n)
		for i := 0; i < n && i < len(vals); i++ {
			v := math.Mod(vals[i], 1000)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = complex(v, 0)
		}
		out, err := FFT(xs)
		if err != nil {
			return false
		}
		var et, ef float64
		for i := range xs {
			et += real(xs[i])*real(xs[i]) + imag(xs[i])*imag(xs[i])
			ef += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
		}
		ef /= float64(n)
		return math.Abs(et-ef) <= 1e-6*(1+et)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every reported peak index is a strict local maximum above the
// threshold, and consecutive peaks respect the distance constraint.
func TestPropertyFindPeaksInvariants(t *testing.T) {
	f := func(raw []int8, minH int8, dist uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		d := int(dist%10) + 1
		peaks := FindPeaks(xs, float64(minH), d)
		for k, p := range peaks {
			if p <= 0 || p >= len(xs)-1 {
				return false
			}
			if xs[p] < float64(minH) || xs[p] < xs[p-1] || xs[p] <= xs[p+1] {
				return false
			}
			if k > 0 && p-peaks[k-1] < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
