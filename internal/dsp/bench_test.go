package dsp

import (
	"math"
	"testing"
)

func benchSignal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*7*float64(i)/float64(n)) + 0.3*math.Sin(2*math.Pi*41*float64(i)/float64(n))
	}
	return out
}

func BenchmarkFFT1024(b *testing.B) {
	sig := benchSignal(1024)
	cs := make([]complex128, len(sig))
	for i, x := range sig {
		cs[i] = complex(x, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(cs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTALTA(b *testing.B) {
	sig := benchSignal(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := STALTA(sig, 20, 150); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandpassApply(b *testing.B) {
	sig := benchSignal(1000)
	f, err := NewBandpass(1000, 50, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reset()
		f.Apply(sig)
	}
}

func BenchmarkFindPeaks(b *testing.B) {
	sig := benchSignal(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindPeaks(sig, 0.5, 20)
	}
}

func BenchmarkMedianFilter(b *testing.B) {
	sig := benchSignal(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MedianFilter(sig, 5)
	}
}
