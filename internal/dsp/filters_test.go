package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

// tone renders a sinusoid at freq Hz for n samples at rate Hz.
func tone(n int, rate, freq, amplitude float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*freq*float64(i)/rate)
	}
	return out
}

func add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func TestBandpassDesignValidation(t *testing.T) {
	if _, err := NewBandpass(0, 10, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewBandpass(100, 60, 1); err == nil {
		t.Error("center above Nyquist accepted")
	}
	if _, err := NewBandpass(100, 10, 0); err == nil {
		t.Error("zero q accepted")
	}
}

func TestBandpassSelectsBand(t *testing.T) {
	const rate = 1000.0
	f, err := NewBandpass(rate, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := add(tone(2000, rate, 50, 1), add(tone(2000, rate, 5, 1), tone(2000, rate, 400, 1)))
	out := f.Apply(in)
	// Steady-state: the 50 Hz component passes, 5 Hz and 400 Hz attenuate.
	steady := out[500:]
	passed := RMS(steady)
	if passed < 0.4 || passed > 1.0 {
		t.Errorf("band RMS = %.3f, want ~0.7 (unit 50 Hz tone)", passed)
	}
	// Compare against each interferer alone.
	f.Reset()
	lowOnly := f.Apply(tone(2000, rate, 5, 1))
	if r := RMS(lowOnly[500:]); r > 0.15 {
		t.Errorf("5 Hz leakage RMS = %.3f", r)
	}
	f.Reset()
	highOnly := f.Apply(tone(2000, rate, 400, 1))
	if r := RMS(highOnly[500:]); r > 0.15 {
		t.Errorf("400 Hz leakage RMS = %.3f", r)
	}
}

func TestLowpassBiquad(t *testing.T) {
	const rate = 1000.0
	f, err := NewLowpassBiquad(rate, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := f.Apply(add(tone(2000, rate, 2, 1), tone(2000, rate, 200, 1)))
	low, err := Goertzel(out[500:], rate, 2)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Goertzel(out[500:], rate, 200)
	if err != nil {
		t.Fatal(err)
	}
	if low < 100*high {
		t.Errorf("low-pass: 2 Hz power %.3g not ≫ 200 Hz power %.3g", low, high)
	}
	if _, err := NewLowpassBiquad(0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewLowpassBiquad(100, 60); err == nil {
		t.Error("cutoff above Nyquist accepted")
	}
}

func TestBiquadReset(t *testing.T) {
	f, err := NewBandpass(1000, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Step(1)
	f.Reset()
	b := f.Step(1)
	if a != b {
		t.Errorf("Reset did not clear state: %v vs %v", a, b)
	}
}

func TestGoertzelDetectsTone(t *testing.T) {
	const rate = 1000.0
	sig := tone(500, rate, 100, 1)
	at100, err := Goertzel(sig, rate, 100)
	if err != nil {
		t.Fatal(err)
	}
	at250, err := Goertzel(sig, rate, 250)
	if err != nil {
		t.Fatal(err)
	}
	if at100 < 50*at250 {
		t.Errorf("target power %.3g not ≫ off-target %.3g", at100, at250)
	}
	if _, err := Goertzel(nil, rate, 100); err == nil {
		t.Error("empty signal accepted")
	}
	if _, err := Goertzel(sig, rate, 600); err == nil {
		t.Error("target above Nyquist accepted")
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	const rate = 1000.0
	sig := tone(1000, rate, 50, 1) // period 20 samples
	ac, err := Autocorrelation(sig, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Errorf("lag 0 = %v, want 1", ac[0])
	}
	if ac[20] < 0.8 {
		t.Errorf("lag 20 = %v, want near 1 for a 20-sample period", ac[20])
	}
	if ac[10] > 0 {
		t.Errorf("lag 10 (half period) = %v, want negative", ac[10])
	}
	if _, err := Autocorrelation(sig, len(sig)); err == nil {
		t.Error("maxLag >= len accepted")
	}
}

func TestAutocorrelationFlatSignal(t *testing.T) {
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 7
	}
	ac, err := Autocorrelation(flat, 10)
	if err != nil {
		t.Fatal(err)
	}
	for lag, v := range ac {
		if v != 0 {
			t.Errorf("flat signal lag %d = %v, want 0", lag, v)
		}
	}
}

func TestDominantPeriod(t *testing.T) {
	sig := tone(1000, 1000, 40, 1) // period 25
	p, err := DominantPeriod(sig, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p < 24 || p > 26 {
		t.Errorf("period = %d, want ~25", p)
	}
	if _, err := DominantPeriod(sig, 0, 10); err == nil {
		t.Error("minLag 0 accepted")
	}
	if _, err := DominantPeriod(sig, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestMedianFilterRejectsImpulses(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 10
	}
	xs[25] = 1000 // impulse
	out := MedianFilter(xs, 5)
	if out[25] != 10 {
		t.Errorf("impulse survived: %v", out[25])
	}
	// Even width is promoted to odd; width<1 clamps to identity-ish.
	if got := MedianFilter(xs, 4)[25]; got != 10 {
		t.Errorf("even width: %v", got)
	}
	id := MedianFilter(xs, 0)
	if id[25] != 1000 {
		t.Errorf("width 1 should be identity, got %v", id[25])
	}
}

// Property: the median filter's output values always come from the input's
// value set, and the filter is idempotent on constant signals.
func TestPropertyMedianFromInput(t *testing.T) {
	f := func(raw []int8, w uint8) bool {
		xs := make([]float64, len(raw))
		set := map[float64]bool{}
		for i, v := range raw {
			xs[i] = float64(v)
			set[float64(v)] = true
		}
		out := MedianFilter(xs, int(w%9))
		for _, v := range out {
			if !set[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
