package coapmsg

import "testing"

// BenchmarkMarshalUnmarshal measures one full request round trip — the unit
// of work A1 performs thousands of times per window under observe + blocks.
func BenchmarkMarshalUnmarshal(b *testing.B) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: 7,
		Token:     []byte{1, 2},
		Payload:   []byte(`{"resource":"light","mean":312.5}`),
	}
	m.AddOption(OptUriPath, []byte("sensors"))
	m.AddOption(OptUriPath, []byte("light"))
	m.AddOption(OptContentFormat, []byte{0, 50})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := m.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockwiseTransfer measures assembling a 6 KB representation from
// 64-byte blocks.
func BenchmarkBlockwiseTransfer(b *testing.B) {
	full := make([]byte, 6000)
	for i := range full {
		full[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		var asm Assembler
		for j := 0; !asm.Done(); j++ {
			req := &Message{Type: Confirmable, Code: CodeGET, MessageID: uint16(j)}
			reply, err := ServeBlock2(req, CodeContent, FormatText, full, asm.Next(2))
			if err != nil {
				b.Fatal(err)
			}
			if err := asm.Add(reply); err != nil {
				b.Fatal(err)
			}
		}
	}
}
