package coapmsg

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal: arbitrary bytes must never panic the parser, and anything
// it accepts must survive a marshal/unmarshal round trip structurally.
func FuzzUnmarshal(f *testing.F) {
	seed := &Message{Type: Confirmable, Code: CodeGET, MessageID: 7, Token: []byte{1}}
	seed.AddOption(OptUriPath, []byte("sensors"))
	seed.Payload = []byte("x")
	wire, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte{0x40, 0x01, 0x00, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := m.Marshal()
		if err != nil {
			// Parsed messages can carry >8-byte-token impossibility only if
			// the parser is broken; everything else must re-marshal.
			t.Fatalf("accepted message does not re-marshal: %v", err)
		}
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled message rejected: %v", err)
		}
		if m2.Code != m.Code || m2.MessageID != m.MessageID || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatal("round trip changed the message")
		}
	})
}
