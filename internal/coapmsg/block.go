package coapmsg

import (
	"errors"
	"fmt"
)

// Blockwise transfer options (RFC 7959): large representations are split
// into blocks a constrained endpoint can buffer.
const (
	// OptBlock2 carries the descriptive block option of a response body.
	OptBlock2 OptionID = 23
	// OptBlock1 carries the block option of a request body.
	OptBlock1 OptionID = 27
	// OptSize2 announces the full representation size.
	OptSize2 OptionID = 28
)

// Block is a decoded Block1/Block2 option value.
type Block struct {
	// Num is the block number (0-based).
	Num uint32
	// More reports whether further blocks follow.
	More bool
	// SZX encodes the block size as 2^(SZX+4) bytes; valid values 0..6
	// (16..1024 bytes).
	SZX uint8
}

// Errors callers match with errors.Is.
var (
	ErrBadBlock  = errors.New("coapmsg: malformed block option")
	ErrBlockSize = errors.New("coapmsg: unsupported block size")
)

// BlockSizeFor returns the SZX exponent for a byte size, which must be a
// power of two in [16, 1024].
func BlockSizeFor(bytes int) (uint8, error) {
	for szx := uint8(0); szx <= 6; szx++ {
		if 16<<szx == bytes {
			return szx, nil
		}
	}
	return 0, fmt.Errorf("%w: %d bytes", ErrBlockSize, bytes)
}

// Size is the block's payload size in bytes.
func (b Block) Size() int { return 16 << b.SZX }

// Offset is the block's byte offset within the full representation.
func (b Block) Offset() int { return int(b.Num) * b.Size() }

// Marshal encodes the block option value (RFC 7959 §2.2): an unsigned
// integer NUM<<4 | M<<3 | SZX in 0-3 bytes, minimal length.
func (b Block) Marshal() ([]byte, error) {
	if b.SZX > 6 {
		return nil, fmt.Errorf("%w: szx %d", ErrBlockSize, b.SZX)
	}
	if b.Num >= 1<<20 {
		return nil, fmt.Errorf("%w: block number %d", ErrBadBlock, b.Num)
	}
	v := b.Num<<4 | uint32(b.SZX)
	if b.More {
		v |= 1 << 3
	}
	switch {
	case v == 0:
		return []byte{}, nil
	case v < 1<<8:
		return []byte{byte(v)}, nil
	case v < 1<<16:
		return []byte{byte(v >> 8), byte(v)}, nil
	default:
		return []byte{byte(v >> 16), byte(v >> 8), byte(v)}, nil
	}
}

// ParseBlock decodes a block option value.
func ParseBlock(value []byte) (Block, error) {
	if len(value) > 3 {
		return Block{}, fmt.Errorf("%w: %d bytes", ErrBadBlock, len(value))
	}
	var v uint32
	for _, c := range value {
		v = v<<8 | uint32(c)
	}
	b := Block{
		Num:  v >> 4,
		More: v&(1<<3) != 0,
		SZX:  uint8(v & 0x7),
	}
	if b.SZX == 7 {
		return Block{}, fmt.Errorf("%w: reserved szx 7", ErrBlockSize)
	}
	return b, nil
}

// BlockOption extracts a parsed Block1/Block2 option from a message, with
// found=false when absent.
func (m *Message) BlockOption(id OptionID) (blk Block, found bool, err error) {
	for _, o := range m.Options {
		if o.ID != id {
			continue
		}
		b, err := ParseBlock(o.Value)
		if err != nil {
			return Block{}, true, err
		}
		return b, true, nil
	}
	return Block{}, false, nil
}

// ServeBlock2 builds the response for one block of a large representation:
// it slices the payload at the requested block and sets Block2 and Size2.
// Requests beyond the end yield 4.00 Bad Request.
func ServeBlock2(req *Message, code Code, contentFormat uint16, full []byte, requested Block) (*Message, error) {
	size := requested.Size()
	offset := requested.Offset()
	if offset > len(full) || (offset == len(full) && len(full) > 0) {
		return NewReply(req, CodeBadReq, FormatText, nil), nil
	}
	end := offset + size
	more := true
	if end >= len(full) {
		end = len(full)
		more = false
	}
	reply := NewReply(req, code, contentFormat, full[offset:end])
	blockVal, err := Block{Num: requested.Num, More: more, SZX: requested.SZX}.Marshal()
	if err != nil {
		return nil, err
	}
	reply.AddOption(OptBlock2, blockVal)
	reply.AddOption(OptSize2, encodeUint(uint32(len(full))))
	return reply, nil
}

// Assembler reconstructs a representation from sequential Block2 responses.
type Assembler struct {
	buf     []byte
	nextNum uint32
	done    bool
}

// Done reports whether the final block has been added.
func (a *Assembler) Done() bool { return a.done }

// Bytes returns the assembled representation (valid once Done).
func (a *Assembler) Bytes() []byte { return a.buf }

// Add ingests one Block2 response in order. Out-of-order or post-final
// blocks are rejected.
func (a *Assembler) Add(reply *Message) error {
	if a.done {
		return fmt.Errorf("%w: block after final", ErrBadBlock)
	}
	blk, found, err := reply.BlockOption(OptBlock2)
	if err != nil {
		return err
	}
	if !found {
		// Non-blockwise reply: the whole representation at once.
		a.buf = append(a.buf, reply.Payload...)
		a.done = true
		return nil
	}
	if blk.Num != a.nextNum {
		return fmt.Errorf("%w: got block %d, want %d", ErrBadBlock, blk.Num, a.nextNum)
	}
	a.buf = append(a.buf, reply.Payload...)
	a.nextNum++
	if !blk.More {
		a.done = true
	}
	return nil
}

// Next returns the block to request after the blocks added so far.
func (a *Assembler) Next(szx uint8) Block {
	return Block{Num: a.nextNum, SZX: szx}
}

func encodeUint(v uint32) []byte {
	switch {
	case v == 0:
		return []byte{}
	case v < 1<<8:
		return []byte{byte(v)}
	case v < 1<<16:
		return []byte{byte(v >> 8), byte(v)}
	case v < 1<<24:
		return []byte{byte(v >> 16), byte(v >> 8), byte(v)}
	default:
		return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
}
