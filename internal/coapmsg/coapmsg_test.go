package coapmsg

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripBasicRequest(t *testing.T) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: 0xBEEF,
		Token:     []byte{1, 2, 3},
	}
	m.AddOption(OptUriPath, []byte("sensors"))
	m.AddOption(OptUriPath, []byte("light"))
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Type != Confirmable || got.Code != CodeGET || got.MessageID != 0xBEEF {
		t.Errorf("header = %+v", got)
	}
	if !bytes.Equal(got.Token, m.Token) {
		t.Errorf("token = %v", got.Token)
	}
	path := got.PathOptions()
	if len(path) != 2 || path[0] != "sensors" || path[1] != "light" {
		t.Errorf("path = %v", path)
	}
}

func TestRoundTripWithPayload(t *testing.T) {
	m := &Message{Type: Acknowledgement, Code: CodeContent, MessageID: 7, Payload: []byte(`{"v":1}`)}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestHeaderByteLayout(t *testing.T) {
	m := &Message{Type: NonConfirmable, Code: CodePOST, MessageID: 0x0102}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x50 { // ver=1, type=1(NON), tkl=0
		t.Errorf("byte0 = %#x, want 0x50", b[0])
	}
	if b[1] != 0x02 {
		t.Errorf("code byte = %#x, want 0x02", b[1])
	}
	if b[2] != 0x01 || b[3] != 0x02 {
		t.Errorf("message id bytes = %#x %#x", b[2], b[3])
	}
}

func TestLargeOptionDeltaAndLength(t *testing.T) {
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	long := bytes.Repeat([]byte{'x'}, 300) // needs 14-nibble length encoding
	m.AddOption(OptionID(2000), long)      // needs 14-nibble delta encoding
	m.AddOption(OptUriPath, []byte("p"))
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 2 {
		t.Fatalf("options = %d, want 2", len(got.Options))
	}
	// Options are sorted by ID on the wire.
	if got.Options[0].ID != OptUriPath || got.Options[1].ID != OptionID(2000) {
		t.Errorf("option ids = %v, %v", got.Options[0].ID, got.Options[1].ID)
	}
	if !bytes.Equal(got.Options[1].Value, long) {
		t.Error("long option value corrupted")
	}
}

func TestMediumOptionDelta(t *testing.T) {
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	m.AddOption(OptionID(100), []byte("v")) // 13-nibble delta encoding
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options[0].ID != OptionID(100) {
		t.Errorf("id = %v, want 100", got.Options[0].ID)
	}
}

func TestMarshalRejectsLongToken(t *testing.T) {
	m := &Message{Token: bytes.Repeat([]byte{1}, 9)}
	if _, err := m.Marshal(); !errors.Is(err, ErrBadToken) {
		t.Errorf("err = %v, want ErrBadToken", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{0x40}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	if _, err := Unmarshal([]byte{0x00, 0, 0, 0}); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	if _, err := Unmarshal([]byte{0x49, 0, 0, 0}); !errors.Is(err, ErrBadToken) {
		t.Errorf("tkl 9: %v", err)
	}
	if _, err := Unmarshal([]byte{0x42, 0, 0, 0, 1}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated token: %v", err)
	}
	// Payload marker with nothing after it.
	if _, err := Unmarshal([]byte{0x40, 0, 0, 0, 0xFF}); err == nil {
		t.Error("empty payload after marker accepted")
	}
	// Option with reserved nibble 15.
	if _, err := Unmarshal([]byte{0x40, 0, 0, 0, 0xF0}); !errors.Is(err, ErrBadOption) {
		t.Errorf("reserved nibble: %v", err)
	}
	// Option value longer than the buffer.
	if _, err := Unmarshal([]byte{0x40, 0, 0, 0, 0x15, 'a'}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated option: %v", err)
	}
}

func TestNewReplyMirrorsRequest(t *testing.T) {
	req := &Message{Type: Confirmable, Code: CodeGET, MessageID: 99, Token: []byte{9}}
	rep := NewReply(req, CodeContent, FormatJSON, []byte(`{}`))
	if rep.Type != Acknowledgement || rep.MessageID != 99 {
		t.Errorf("reply header = %+v", rep)
	}
	if !bytes.Equal(rep.Token, req.Token) {
		t.Error("token not mirrored")
	}
	if len(rep.Options) != 1 || rep.Options[0].ID != OptContentFormat {
		t.Errorf("options = %v", rep.Options)
	}
	empty := NewReply(req, CodeNotFound, FormatText, nil)
	if len(empty.Options) != 0 {
		t.Error("content-format added to empty payload")
	}
}

func TestCodeAndTypeStrings(t *testing.T) {
	if CodeContent.String() != "2.05" || CodeNotFound.String() != "4.04" {
		t.Error("code strings wrong")
	}
	if Confirmable.String() != "CON" || Reset.String() != "RST" {
		t.Error("type strings wrong")
	}
	if Type(9).String() == "" {
		t.Error("unknown type string empty")
	}
}

// Property: Marshal → Unmarshal is the identity for generated messages
// (with options sorted by ID, which Marshal canonicalizes).
func TestPropertyRoundTrip(t *testing.T) {
	f := func(mid uint16, token []byte, path []byte, payload []byte, typ uint8) bool {
		if len(token) > 8 {
			token = token[:8]
		}
		m := &Message{
			Type:      Type(typ % 4),
			Code:      CodeGET,
			MessageID: mid,
			Token:     token,
		}
		if len(path) > 0 {
			m.AddOption(OptUriPath, path)
		}
		if len(payload) > 0 {
			m.Payload = payload
		}
		b, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if got.MessageID != mid || got.Type != m.Type {
			return false
		}
		if len(token) > 0 && !bytes.Equal(got.Token, token) {
			return false
		}
		if len(payload) > 0 && !bytes.Equal(got.Payload, payload) {
			return false
		}
		if len(path) > 0 && !bytes.Equal(got.Options[0].Value, path) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Unmarshal never panics on arbitrary bytes.
func TestPropertyUnmarshalRobust(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b) //nolint:errcheck // only exercising for panics
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
