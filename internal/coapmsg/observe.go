package coapmsg

import (
	"errors"
	"fmt"
)

// OptObserve is the Observe option (RFC 7641): a client registers interest
// in a resource and the server pushes notifications as the state changes.
const OptObserve OptionID = 6

// Observe option register/deregister values (RFC 7641 §2).
const (
	ObserveRegister   uint32 = 0
	ObserveDeregister uint32 = 1
)

// ErrNotObserve is returned when a message carries no Observe option.
var ErrNotObserve = errors.New("coapmsg: no observe option")

// SetObserve adds an Observe option with the given value (minimal-length
// big-endian encoding; values are at most 24 bits per the RFC).
func (m *Message) SetObserve(v uint32) error {
	if v >= 1<<24 {
		return fmt.Errorf("coapmsg: observe value %d exceeds 24 bits", v)
	}
	m.AddOption(OptObserve, encodeUint(v))
	return nil
}

// ObserveValue extracts the Observe option value.
func (m *Message) ObserveValue() (uint32, error) {
	for _, o := range m.Options {
		if o.ID != OptObserve {
			continue
		}
		if len(o.Value) > 3 {
			return 0, fmt.Errorf("%w: observe option %d bytes", ErrBadOption, len(o.Value))
		}
		var v uint32
		for _, c := range o.Value {
			v = v<<8 | uint32(c)
		}
		return v, nil
	}
	return 0, ErrNotObserve
}

// Observer is one registered observation relation.
type Observer struct {
	Token    []byte
	Resource string
	seq      uint32
}

// ObserveRegistry tracks observation relations server-side and mints
// sequence-numbered notifications.
type ObserveRegistry struct {
	observers []*Observer
	nextSeq   uint32
}

// NewObserveRegistry returns an empty registry. Sequence numbers start at 2
// so the registration response's Observe value (1 is reserved for
// deregister) never collides with a notification.
func NewObserveRegistry() *ObserveRegistry {
	return &ObserveRegistry{nextSeq: 2}
}

// Len reports the number of active relations.
func (r *ObserveRegistry) Len() int { return len(r.observers) }

// HandleRequest processes a GET carrying an Observe option: register (0)
// adds a relation and returns the confirmation reply; deregister (1) removes
// it. Non-observe requests return ErrNotObserve.
func (r *ObserveRegistry) HandleRequest(req *Message, resource string, payload []byte) (*Message, error) {
	v, err := req.ObserveValue()
	if err != nil {
		return nil, err
	}
	switch v {
	case ObserveRegister:
		r.observers = append(r.observers, &Observer{
			Token:    append([]byte(nil), req.Token...),
			Resource: resource,
		})
		reply := NewReply(req, CodeContent, FormatJSON, payload)
		if err := reply.SetObserve(r.bumpSeq()); err != nil {
			return nil, err
		}
		return reply, nil
	case ObserveDeregister:
		r.remove(req.Token, resource)
		return NewReply(req, CodeContent, FormatJSON, payload), nil
	default:
		return NewReply(req, CodeBadReq, FormatText, nil), nil
	}
}

// Notify builds one notification per relation on the resource: a CON 2.05
// carrying the observer's token, a fresh sequence number, and the payload.
func (r *ObserveRegistry) Notify(resource string, messageID *uint16, payload []byte) ([]*Message, error) {
	var out []*Message
	for _, ob := range r.observers {
		if ob.Resource != resource {
			continue
		}
		*messageID++
		note := &Message{
			Type:      Confirmable,
			Code:      CodeContent,
			MessageID: *messageID,
			Token:     append([]byte(nil), ob.Token...),
			Payload:   payload,
		}
		if err := note.SetObserve(r.bumpSeq()); err != nil {
			return nil, err
		}
		ob.seq = r.nextSeq
		out = append(out, note)
	}
	return out, nil
}

func (r *ObserveRegistry) bumpSeq() uint32 {
	r.nextSeq++
	if r.nextSeq >= 1<<24 {
		r.nextSeq = 2
	}
	return r.nextSeq
}

func (r *ObserveRegistry) remove(token []byte, resource string) {
	kept := r.observers[:0]
	for _, ob := range r.observers {
		if ob.Resource == resource && bytesEqual(ob.Token, token) {
			continue
		}
		kept = append(kept, ob)
	}
	r.observers = kept
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
