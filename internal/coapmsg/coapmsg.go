// Package coapmsg implements the Constrained Application Protocol (CoAP,
// RFC 7252) message wire format used by the CoAP-server workload (A1): the
// 4-byte fixed header, token, delta-encoded options, and payload marker.
//
// The subset covers everything the workload needs — confirmable/ack
// exchanges, Uri-Path and Content-Format options, and piggybacked responses.
package coapmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Version is the protocol version this package implements.
const Version = 1

// Type is the CoAP message type.
type Type uint8

// CoAP message types (RFC 7252 §3).
const (
	Confirmable Type = iota
	NonConfirmable
	Acknowledgement
	Reset
)

// String names the type.
func (t Type) String() string {
	switch t {
	case Confirmable:
		return "CON"
	case NonConfirmable:
		return "NON"
	case Acknowledgement:
		return "ACK"
	case Reset:
		return "RST"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Code is the CoAP method/response code, encoded class.detail.
type Code uint8

// Request and response codes (RFC 7252 §12.1).
const (
	CodeEmpty    Code = 0
	CodeGET      Code = 1
	CodePOST     Code = 2
	CodePUT      Code = 3
	CodeDELETE   Code = 4
	CodeCreated  Code = 2<<5 | 1 // 2.01
	CodeContent  Code = 2<<5 | 5 // 2.05
	CodeNotFound Code = 4<<5 | 4 // 4.04
	CodeBadReq   Code = 4<<5 | 0 // 4.00
)

// String formats the code as class.detail.
func (c Code) String() string { return fmt.Sprintf("%d.%02d", c>>5, c&0x1f) }

// OptionID identifies a CoAP option.
type OptionID uint16

// Options used by the workload (RFC 7252 §5.10).
const (
	OptUriPath       OptionID = 11
	OptContentFormat OptionID = 12
	OptUriQuery      OptionID = 15
)

// Content-Format registry values.
const (
	FormatText uint16 = 0
	FormatJSON uint16 = 50
)

// Option is one option instance.
type Option struct {
	ID    OptionID
	Value []byte
}

// Message is a parsed CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option
	Payload   []byte
}

// Errors callers match with errors.Is.
var (
	ErrTruncated  = errors.New("coapmsg: truncated message")
	ErrBadVersion = errors.New("coapmsg: unsupported version")
	ErrBadToken   = errors.New("coapmsg: token length > 8")
	ErrBadOption  = errors.New("coapmsg: malformed option")
)

// AddOption appends an option.
func (m *Message) AddOption(id OptionID, value []byte) {
	m.Options = append(m.Options, Option{ID: id, Value: value})
}

// PathOptions returns the Uri-Path segments in order.
func (m *Message) PathOptions() []string {
	var out []string
	for _, o := range m.Options {
		if o.ID == OptUriPath {
			out = append(out, string(o.Value))
		}
	}
	return out
}

// Marshal encodes the message to its RFC 7252 wire form.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Token) > 8 {
		return nil, ErrBadToken
	}
	buf := make([]byte, 0, 16+len(m.Payload))
	buf = append(buf, byte(Version<<6)|byte(m.Type&3)<<4|byte(len(m.Token)))
	buf = append(buf, byte(m.Code))
	buf = binary.BigEndian.AppendUint16(buf, m.MessageID)
	buf = append(buf, m.Token...)

	opts := make([]Option, len(m.Options))
	copy(opts, m.Options)
	sort.SliceStable(opts, func(i, j int) bool { return opts[i].ID < opts[j].ID })
	prev := OptionID(0)
	for _, o := range opts {
		delta := int(o.ID) - int(prev)
		prev = o.ID
		db, dx, err := extendable(delta)
		if err != nil {
			return nil, fmt.Errorf("option %d: %w", o.ID, err)
		}
		lb, lx, err := extendable(len(o.Value))
		if err != nil {
			return nil, fmt.Errorf("option %d length: %w", o.ID, err)
		}
		buf = append(buf, db<<4|lb)
		buf = append(buf, dx...)
		buf = append(buf, lx...)
		buf = append(buf, o.Value...)
	}
	if len(m.Payload) > 0 {
		buf = append(buf, 0xFF)
		buf = append(buf, m.Payload...)
	}
	return buf, nil
}

// extendable encodes a CoAP option delta/length nibble with its extension
// bytes (RFC 7252 §3.1).
func extendable(v int) (nibble byte, ext []byte, err error) {
	switch {
	case v < 0:
		return 0, nil, ErrBadOption
	case v < 13:
		return byte(v), nil, nil
	case v < 269:
		return 13, []byte{byte(v - 13)}, nil
	case v < 269+65536:
		ext = binary.BigEndian.AppendUint16(nil, uint16(v-269))
		return 14, ext, nil
	default:
		return 0, nil, ErrBadOption
	}
}

// Unmarshal parses an RFC 7252 wire-format message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	if b[0]>>6 != Version {
		return nil, ErrBadVersion
	}
	tkl := int(b[0] & 0x0f)
	if tkl > 8 {
		return nil, ErrBadToken
	}
	m := &Message{
		Type:      Type(b[0] >> 4 & 3),
		Code:      Code(b[1]),
		MessageID: binary.BigEndian.Uint16(b[2:4]),
	}
	p := 4
	if len(b) < p+tkl {
		return nil, ErrTruncated
	}
	if tkl > 0 {
		m.Token = append([]byte(nil), b[p:p+tkl]...)
		p += tkl
	}
	prev := OptionID(0)
	for p < len(b) {
		if b[p] == 0xFF {
			p++
			if p == len(b) {
				return nil, fmt.Errorf("%w: empty payload after marker", ErrBadOption)
			}
			m.Payload = append([]byte(nil), b[p:]...)
			return m, nil
		}
		dn := int(b[p] >> 4)
		ln := int(b[p] & 0x0f)
		p++
		delta, n, err := readExtendable(b, p, dn)
		if err != nil {
			return nil, err
		}
		p += n
		length, n, err := readExtendable(b, p, ln)
		if err != nil {
			return nil, err
		}
		p += n
		if p+length > len(b) {
			return nil, ErrTruncated
		}
		prev += OptionID(delta)
		m.Options = append(m.Options, Option{ID: prev, Value: append([]byte(nil), b[p:p+length]...)})
		p += length
	}
	return m, nil
}

func readExtendable(b []byte, p, nibble int) (value, consumed int, err error) {
	switch nibble {
	case 15:
		return 0, 0, ErrBadOption
	case 14:
		if p+2 > len(b) {
			return 0, 0, ErrTruncated
		}
		return int(binary.BigEndian.Uint16(b[p:p+2])) + 269, 2, nil
	case 13:
		if p+1 > len(b) {
			return 0, 0, ErrTruncated
		}
		return int(b[p]) + 13, 1, nil
	default:
		return nibble, 0, nil
	}
}

// NewReply builds the piggybacked acknowledgement to a confirmable request:
// same message ID and token, ACK type, the given response code and payload.
func NewReply(req *Message, code Code, contentFormat uint16, payload []byte) *Message {
	reply := &Message{
		Type:      Acknowledgement,
		Code:      code,
		MessageID: req.MessageID,
		Token:     append([]byte(nil), req.Token...),
		Payload:   payload,
	}
	if len(payload) > 0 {
		reply.AddOption(OptContentFormat, binary.BigEndian.AppendUint16(nil, contentFormat))
	}
	return reply
}
