package coapmsg

import (
	"errors"
	"testing"
)

func observeRequest(t *testing.T, token []byte, v uint32) *Message {
	t.Helper()
	req := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1, Token: token}
	req.AddOption(OptUriPath, []byte("sensors"))
	req.AddOption(OptUriPath, []byte("light"))
	if err := req.SetObserve(v); err != nil {
		t.Fatal(err)
	}
	return req
}

func TestObserveValueRoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 2, 255, 65536, 1<<24 - 1} {
		m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
		if err := m.SetObserve(v); err != nil {
			t.Fatalf("SetObserve(%d): %v", v, err)
		}
		wire, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parsed.ObserveValue()
		if err != nil || got != v {
			t.Errorf("observe %d -> %d, %v", v, got, err)
		}
	}
	m := &Message{}
	if err := m.SetObserve(1 << 24); err == nil {
		t.Error("25-bit observe accepted")
	}
	plain := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	if _, err := plain.ObserveValue(); !errors.Is(err, ErrNotObserve) {
		t.Errorf("plain message: %v", err)
	}
}

func TestRegistryRegisterAndNotify(t *testing.T) {
	reg := NewObserveRegistry()
	reply, err := reg.HandleRequest(observeRequest(t, []byte{0xAA}, ObserveRegister), "light", []byte(`{"lux":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != CodeContent {
		t.Errorf("register reply = %v", reply.Code)
	}
	if _, err := reply.ObserveValue(); err != nil {
		t.Errorf("register reply missing observe: %v", err)
	}
	if reg.Len() != 1 {
		t.Fatalf("relations = %d", reg.Len())
	}

	var mid uint16 = 100
	notes, err := reg.Notify("light", &mid, []byte(`{"lux":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 {
		t.Fatalf("notes = %d", len(notes))
	}
	n := notes[0]
	if string(n.Token) != "\xaa" {
		t.Errorf("token = %x", n.Token)
	}
	seq1, err := n.ObserveValue()
	if err != nil {
		t.Fatal(err)
	}
	notes2, err := reg.Notify("light", &mid, []byte(`{"lux":3}`))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := notes2[0].ObserveValue()
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq1 {
		t.Errorf("sequence not increasing: %d then %d", seq1, seq2)
	}
	if mid != 102 {
		t.Errorf("message id = %d, want 102", mid)
	}
}

func TestRegistryNotifyFiltersByResource(t *testing.T) {
	reg := NewObserveRegistry()
	if _, err := reg.HandleRequest(observeRequest(t, []byte{1}, ObserveRegister), "light", nil); err != nil {
		t.Fatal(err)
	}
	var mid uint16
	notes, err := reg.Notify("sound", &mid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Errorf("notified %d observers of an unrelated resource", len(notes))
	}
}

func TestRegistryDeregister(t *testing.T) {
	reg := NewObserveRegistry()
	if _, err := reg.HandleRequest(observeRequest(t, []byte{7}, ObserveRegister), "light", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.HandleRequest(observeRequest(t, []byte{7}, ObserveDeregister), "light", nil); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Errorf("relations after deregister = %d", reg.Len())
	}
	// Deregistering a token that was never registered is a no-op.
	if _, err := reg.HandleRequest(observeRequest(t, []byte{9}, ObserveDeregister), "light", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRejectsBadObserveValue(t *testing.T) {
	reg := NewObserveRegistry()
	reply, err := reg.HandleRequest(observeRequest(t, []byte{1}, 7), "light", nil)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != CodeBadReq {
		t.Errorf("bad observe value reply = %v", reply.Code)
	}
	plain := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	if _, err := reg.HandleRequest(plain, "light", nil); !errors.Is(err, ErrNotObserve) {
		t.Errorf("plain request: %v", err)
	}
}
