package coapmsg

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBlockMarshalParseRoundTrip(t *testing.T) {
	cases := []Block{
		{Num: 0, More: false, SZX: 0},
		{Num: 0, More: true, SZX: 2},
		{Num: 1, More: true, SZX: 6},
		{Num: 300, More: false, SZX: 4},
		{Num: 1<<20 - 1, More: true, SZX: 3},
	}
	for _, b := range cases {
		raw, err := b.Marshal()
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		got, err := ParseBlock(raw)
		if err != nil {
			t.Fatalf("%+v: parse: %v", b, err)
		}
		if got != b {
			t.Errorf("round trip %+v -> %+v", b, got)
		}
	}
}

func TestBlockMarshalValidation(t *testing.T) {
	if _, err := (Block{SZX: 7}).Marshal(); !errors.Is(err, ErrBlockSize) {
		t.Errorf("szx 7: %v", err)
	}
	if _, err := (Block{Num: 1 << 20}).Marshal(); !errors.Is(err, ErrBadBlock) {
		t.Errorf("huge num: %v", err)
	}
}

func TestParseBlockValidation(t *testing.T) {
	if _, err := ParseBlock([]byte{1, 2, 3, 4}); !errors.Is(err, ErrBadBlock) {
		t.Errorf("4 bytes: %v", err)
	}
	if _, err := ParseBlock([]byte{0x17}); !errors.Is(err, ErrBlockSize) {
		t.Errorf("szx 7: %v", err)
	}
	// Empty value is block 0, no more, szx 0.
	b, err := ParseBlock(nil)
	if err != nil || b != (Block{}) {
		t.Errorf("empty value: %+v, %v", b, err)
	}
}

func TestBlockSizeFor(t *testing.T) {
	szx, err := BlockSizeFor(64)
	if err != nil || szx != 2 {
		t.Errorf("64 bytes -> %d, %v", szx, err)
	}
	if _, err := BlockSizeFor(100); !errors.Is(err, ErrBlockSize) {
		t.Errorf("100 bytes: %v", err)
	}
	if got := (Block{SZX: 2}).Size(); got != 64 {
		t.Errorf("Size = %d", got)
	}
	if got := (Block{Num: 3, SZX: 2}).Offset(); got != 192 {
		t.Errorf("Offset = %d", got)
	}
}

func blockFetch(t *testing.T, full []byte, szx uint8) []byte {
	t.Helper()
	var asm Assembler
	for i := 0; !asm.Done(); i++ {
		if i > 1000 {
			t.Fatal("assembler never finished")
		}
		req := &Message{Type: Confirmable, Code: CodeGET, MessageID: uint16(i)}
		req.AddOption(OptUriPath, []byte("big"))
		want := asm.Next(szx)
		reqVal, err := want.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		req.AddOption(OptBlock2, reqVal)

		// Server side: parse the request's Block2 and slice.
		parsedReq, err := Unmarshal(mustMarshal(t, req))
		if err != nil {
			t.Fatal(err)
		}
		blk, _, err := parsedReq.BlockOption(OptBlock2)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := ServeBlock2(parsedReq, CodeContent, FormatText, full, blk)
		if err != nil {
			t.Fatal(err)
		}
		parsedReply, err := Unmarshal(mustMarshal(t, reply))
		if err != nil {
			t.Fatal(err)
		}
		if err := asm.Add(parsedReply); err != nil {
			t.Fatal(err)
		}
	}
	return asm.Bytes()
}

func mustMarshal(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBlockwiseEndToEnd(t *testing.T) {
	full := bytes.Repeat([]byte("sensor-history;"), 40) // 600 bytes
	got := blockFetch(t, full, 2)                       // 64-byte blocks
	if !bytes.Equal(got, full) {
		t.Fatalf("assembled %d bytes != original %d", len(got), len(full))
	}
}

func TestBlockwiseExactMultiple(t *testing.T) {
	full := bytes.Repeat([]byte{7}, 128) // exactly two 64-byte blocks
	got := blockFetch(t, full, 2)
	if !bytes.Equal(got, full) {
		t.Fatal("exact-multiple payload corrupted")
	}
}

func TestServeBlock2PastEnd(t *testing.T) {
	req := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	reply, err := ServeBlock2(req, CodeContent, FormatText, make([]byte, 10), Block{Num: 5, SZX: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != CodeBadReq {
		t.Errorf("past-end code = %v, want 4.00", reply.Code)
	}
}

func TestAssemblerRejectsOutOfOrder(t *testing.T) {
	var asm Assembler
	reply := &Message{Type: Acknowledgement, Code: CodeContent, MessageID: 1, Payload: []byte("x")}
	v, err := (Block{Num: 3, More: true, SZX: 2}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reply.AddOption(OptBlock2, v)
	if err := asm.Add(reply); !errors.Is(err, ErrBadBlock) {
		t.Errorf("out of order: %v", err)
	}
}

func TestAssemblerNonBlockwiseReply(t *testing.T) {
	var asm Assembler
	reply := &Message{Type: Acknowledgement, Code: CodeContent, MessageID: 1, Payload: []byte("all")}
	if err := asm.Add(reply); err != nil {
		t.Fatal(err)
	}
	if !asm.Done() || string(asm.Bytes()) != "all" {
		t.Error("single-shot reply not assembled")
	}
	if err := asm.Add(reply); !errors.Is(err, ErrBadBlock) {
		t.Errorf("block after final: %v", err)
	}
}

// Property: ServeBlock2 + Assembler reconstruct any payload at any valid
// block size.
func TestPropertyBlockwiseReassembly(t *testing.T) {
	f := func(payload []byte, szx uint8) bool {
		szx %= 7
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		var asm Assembler
		for i := 0; !asm.Done(); i++ {
			if i > 300 {
				return false
			}
			req := &Message{Type: Confirmable, Code: CodeGET, MessageID: uint16(i)}
			reply, err := ServeBlock2(req, CodeContent, FormatText, payload, asm.Next(szx))
			if err != nil {
				return false
			}
			if reply.Code == CodeBadReq {
				// Only acceptable for a request past the end, which the
				// assembler never issues.
				return false
			}
			if err := asm.Add(reply); err != nil {
				return false
			}
		}
		return bytes.Equal(asm.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
