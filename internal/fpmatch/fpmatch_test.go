package fpmatch

import (
	"errors"
	"testing"
	"testing/quick"

	"iothub/internal/sensor"
)

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB(0.4); err == nil {
		t.Error("threshold 0.4 accepted")
	}
	if _, err := NewDB(1.5); err == nil {
		t.Error("threshold 1.5 accepted")
	}
	db, err := NewDB(0)
	if err != nil {
		t.Fatalf("NewDB(0): %v", err)
	}
	if db.Len() != 0 {
		t.Error("fresh DB not empty")
	}
}

func TestEnrollValidation(t *testing.T) {
	db, err := NewDB(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Enroll("a", make([]byte, 100)); !errors.Is(err, ErrBadSignature) {
		t.Errorf("short template: %v", err)
	}
	if err := db.Enroll("", sensor.FingerTemplate(1)); err == nil {
		t.Error("empty name accepted")
	}
	if err := db.Enroll("alice", sensor.FingerTemplate(1)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := db.Enroll("alice", sensor.FingerTemplate(2)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
}

func TestIdentifyGenuineScan(t *testing.T) {
	db, err := NewDB(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"alice", "bob", "carol"} {
		if err := db.Enroll(name, sensor.FingerTemplate(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	scan := sensor.NewSignature(99, 2).Sample(0) // bob's finger, scan noise
	name, score, err := db.Identify(scan)
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	if name != "bob" {
		t.Errorf("Identify = %q (score %.3f), want bob", name, score)
	}
	if score < 0.95 {
		t.Errorf("genuine score = %.3f, want >= 0.95", score)
	}
}

func TestIdentifyImpostorRejected(t *testing.T) {
	db, err := NewDB(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Enroll("alice", sensor.FingerTemplate(1)); err != nil {
		t.Fatal(err)
	}
	scan := sensor.NewSignature(7, 42).Sample(0) // un-enrolled finger
	_, score, err := db.Identify(scan)
	if !errors.Is(err, ErrNoMatch) {
		t.Errorf("impostor err = %v (score %.3f), want ErrNoMatch", err, score)
	}
	if score > 0.6 {
		t.Errorf("impostor score = %.3f, want near 0.5", score)
	}
}

func TestIdentifyBadScanSize(t *testing.T) {
	db, err := NewDB(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Identify(make([]byte, 10)); !errors.Is(err, ErrBadSignature) {
		t.Errorf("bad size: %v", err)
	}
}

func TestVerify(t *testing.T) {
	db, err := NewDB(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Enroll("alice", sensor.FingerTemplate(1)); err != nil {
		t.Fatal(err)
	}
	ok, err := db.Verify("alice", sensor.NewSignature(5, 1).Sample(0))
	if err != nil || !ok {
		t.Errorf("genuine Verify = %v, %v", ok, err)
	}
	ok, err = db.Verify("alice", sensor.NewSignature(5, 9).Sample(0))
	if err != nil || ok {
		t.Errorf("impostor Verify = %v, %v", ok, err)
	}
	if _, err := db.Verify("mallory", sensor.FingerTemplate(1)); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown name: %v", err)
	}
}

func TestSimilaritySelfIsOne(t *testing.T) {
	tmpl := sensor.FingerTemplate(3)
	s, err := Similarity(tmpl, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	if _, err := Similarity(tmpl, tmpl[:10]); !errors.Is(err, ErrBadSignature) {
		t.Errorf("size mismatch: %v", err)
	}
}

// Property: similarity is symmetric and within [0, 1].
func TestPropertySimilarity(t *testing.T) {
	f := func(fingerA, fingerB uint8) bool {
		a := sensor.FingerTemplate(int(fingerA))
		b := sensor.FingerTemplate(int(fingerB))
		s1, err1 := Similarity(a, b)
		s2, err2 := Similarity(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if s1 != s2 || s1 < 0 || s1 > 1 {
			return false
		}
		return fingerA != fingerB || s1 == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
