// Package fpmatch implements the fingerprint enroll/identify substrate used
// by the A10 workload. Sensors of the paper's class (Adafruit optical reader)
// deliver fixed-size signature templates; matching is similarity search over
// enrolled templates with a noise-tolerant threshold.
package fpmatch

import (
	"errors"
	"fmt"
	"math/bits"
)

// SignatureBytes is the sensor's template size (Table I, S3).
const SignatureBytes = 512

// DefaultThreshold is the minimum similarity accepted as a match. Scan noise
// flips ~1% of bits, so genuine scans score ≈0.98 while impostors score ≈0.5.
const DefaultThreshold = 0.90

// Errors callers match with errors.Is.
var (
	ErrBadSignature = errors.New("fpmatch: wrong signature size")
	ErrDuplicate    = errors.New("fpmatch: name already enrolled")
	ErrNoMatch      = errors.New("fpmatch: no enrolled finger matches")
	ErrUnknown      = errors.New("fpmatch: name not enrolled")
)

// DB is an in-memory enrollment database.
type DB struct {
	threshold float64
	names     []string
	templates map[string][]byte
}

// NewDB returns an empty database with the given acceptance threshold
// (0 selects DefaultThreshold).
func NewDB(threshold float64) (*DB, error) {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold <= 0.5 || threshold > 1 {
		return nil, fmt.Errorf("fpmatch: threshold %v outside (0.5, 1]", threshold)
	}
	return &DB{threshold: threshold, templates: make(map[string][]byte)}, nil
}

// Len reports how many fingers are enrolled.
func (db *DB) Len() int { return len(db.names) }

// Enroll stores a template under name.
func (db *DB) Enroll(name string, template []byte) error {
	if len(template) != SignatureBytes {
		return fmt.Errorf("%w: %d bytes", ErrBadSignature, len(template))
	}
	if name == "" {
		return errors.New("fpmatch: empty name")
	}
	if _, ok := db.templates[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	db.templates[name] = append([]byte(nil), template...)
	db.names = append(db.names, name)
	return nil
}

// Similarity is the fraction of matching bits between two signatures.
func Similarity(a, b []byte) (float64, error) {
	if len(a) != SignatureBytes || len(b) != SignatureBytes {
		return 0, fmt.Errorf("%w: %d vs %d bytes", ErrBadSignature, len(a), len(b))
	}
	diff := 0
	for i := range a {
		diff += bits.OnesCount8(a[i] ^ b[i])
	}
	return 1 - float64(diff)/float64(SignatureBytes*8), nil
}

// Identify returns the enrolled name whose template is most similar to scan,
// provided it clears the threshold; otherwise ErrNoMatch.
func (db *DB) Identify(scan []byte) (name string, score float64, err error) {
	if len(scan) != SignatureBytes {
		return "", 0, fmt.Errorf("%w: %d bytes", ErrBadSignature, len(scan))
	}
	best := -1.0
	// Iterate in enrollment order for determinism.
	for _, n := range db.names {
		s, err := Similarity(scan, db.templates[n])
		if err != nil {
			return "", 0, err
		}
		if s > best {
			best, name = s, n
		}
	}
	if best < db.threshold {
		return "", best, ErrNoMatch
	}
	return name, best, nil
}

// Verify checks scan against one enrolled name.
func (db *DB) Verify(name string, scan []byte) (bool, error) {
	tmpl, ok := db.templates[name]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	s, err := Similarity(scan, tmpl)
	if err != nil {
		return false, err
	}
	return s >= db.threshold, nil
}
