package scheme

import (
	"errors"
	"strings"
	"testing"

	"iothub/internal/apps"
)

// TestSchemeTextRoundTrip drives every registered scheme through the full
// text codec: String → Parse (in several casings, since Parse is the
// CLI-facing entry point) and MarshalText → UnmarshalText.
func TestSchemeTextRoundTrip(t *testing.T) {
	defs := All()
	if len(defs) != 7 {
		t.Fatalf("registered schemes = %d, want the paper's 5 plus Hybrid and ECOM", len(defs))
	}
	for _, d := range defs {
		s := d.Scheme()
		name := s.String()
		for _, spelling := range []string{
			name,
			strings.ToLower(name),
			strings.ToUpper(name),
			"  " + name + " ", // Parse trims surrounding space
		} {
			got, err := Parse(spelling)
			if err != nil {
				t.Errorf("Parse(%q): %v", spelling, err)
				continue
			}
			if got != s {
				t.Errorf("Parse(%q) = %v, want %v", spelling, got, s)
			}
		}

		blob, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", s, err)
		}
		if string(blob) != name {
			t.Errorf("%v.MarshalText = %q, want %q", s, blob, name)
		}
		var back Scheme
		if err := back.UnmarshalText(blob); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", blob, err)
		}
		if back != s {
			t.Errorf("UnmarshalText(%q) = %v, want %v", blob, back, s)
		}
	}
}

// TestSchemeTextInvalid covers the codec's failure paths: unknown names must
// fail with ErrConfig (so CLIs report them as config errors), and
// out-of-range values must stringify without panicking.
func TestSchemeTextInvalid(t *testing.T) {
	for _, name := range []string{"", "warp", "base line", "Scheme(3)", "baselinex"} {
		if _, err := Parse(name); !errors.Is(err, ErrConfig) {
			t.Errorf("Parse(%q) err = %v, want ErrConfig", name, err)
		}
		var s Scheme
		if err := s.UnmarshalText([]byte(name)); !errors.Is(err, ErrConfig) {
			t.Errorf("UnmarshalText(%q) err = %v, want ErrConfig", name, err)
		}
		if s != 0 {
			t.Errorf("failed UnmarshalText(%q) mutated receiver to %v", name, s)
		}
	}
	if got := Scheme(0).String(); got != "Scheme(0)" {
		t.Errorf("Scheme(0).String() = %q", got)
	}
	if got := Scheme(99).String(); got != "Scheme(99)" {
		t.Errorf("Scheme(99).String() = %q", got)
	}
}

// TestModeTextRoundTrip mirrors the scheme codec test for per-app modes.
func TestModeTextRoundTrip(t *testing.T) {
	for _, m := range []Mode{PerSample, Batched, Offloaded, Uploaded} {
		blob, err := m.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", m, err)
		}
		if string(blob) != m.String() {
			t.Errorf("%v.MarshalText = %q, want %q", m, blob, m.String())
		}
		var back Mode
		if err := back.UnmarshalText(blob); err != nil {
			t.Fatalf("Mode.UnmarshalText(%q): %v", blob, err)
		}
		if back != m {
			t.Errorf("Mode.UnmarshalText(%q) = %v, want %v", blob, back, m)
		}
	}
}

// TestModeTextInvalid: unknown mode names fail with ErrConfig; modes are
// result-file identifiers, so (unlike Parse) the codec is case-exact.
func TestModeTextInvalid(t *testing.T) {
	for _, name := range []string{"", "bogus", "persample", "BATCHED", "Mode(2)"} {
		var m Mode
		if err := m.UnmarshalText([]byte(name)); !errors.Is(err, ErrConfig) {
			t.Errorf("Mode.UnmarshalText(%q) err = %v, want ErrConfig", name, err)
		}
		if m != 0 {
			t.Errorf("failed Mode.UnmarshalText(%q) mutated receiver to %v", name, m)
		}
	}
	if got := Mode(0).String(); got != "Mode(0)" {
		t.Errorf("Mode(0).String() = %q", got)
	}
}

// FuzzParseScheme asserts the codec's core property over arbitrary input:
// Parse either rejects with ErrConfig, or returns a registered scheme whose
// canonical name re-parses to the same value.
func FuzzParseScheme(f *testing.F) {
	for _, d := range All() {
		f.Add(d.Scheme().String())
		f.Add(strings.ToLower(d.Scheme().String()))
	}
	f.Add("")
	f.Add("warp")
	f.Add(" BeAm ")
	f.Fuzz(func(t *testing.T, name string) {
		s, err := Parse(name)
		if err != nil {
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("Parse(%q) err = %v, want ErrConfig", name, err)
			}
			return
		}
		if _, err := Lookup(s); err != nil {
			t.Fatalf("Parse(%q) = %v, which is not registered: %v", name, s, err)
		}
		again, err := Parse(s.String())
		if err != nil || again != s {
			t.Fatalf("Parse(%q) = %v but Parse(%q) = %v, %v", name, s, s.String(), again, err)
		}
	})
}

// FuzzModeUnmarshalText: any accepted text must be the mode's own canonical
// marshaling; everything else is ErrConfig.
func FuzzModeUnmarshalText(f *testing.F) {
	for _, m := range []Mode{PerSample, Batched, Offloaded, Uploaded} {
		f.Add(m.String())
	}
	f.Add("bogus")
	f.Fuzz(func(t *testing.T, name string) {
		var m Mode
		err := m.UnmarshalText([]byte(name))
		if err != nil {
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("Mode.UnmarshalText(%q) err = %v, want ErrConfig", name, err)
			}
			return
		}
		blob, err := m.MarshalText()
		if err != nil || string(blob) != name {
			t.Fatalf("Mode.UnmarshalText(%q) = %v, but MarshalText = %q, %v", name, m, blob, err)
		}
	})
}

// TestRegistry covers Lookup (known and unknown), the table ordering of
// All/Names, and the duplicate-registration panic.
func TestRegistry(t *testing.T) {
	for _, s := range []Scheme{Baseline, Batching, COM, BCOM, BEAM, Hybrid, ECOM} {
		d, err := Lookup(s)
		if err != nil {
			t.Fatalf("Lookup(%v): %v", s, err)
		}
		if d.Scheme() != s {
			t.Errorf("Lookup(%v).Scheme() = %v", s, d.Scheme())
		}
		if want := s == BCOM || s == Hybrid; d.RequiresAssign() != want {
			t.Errorf("%v.RequiresAssign() = %v, want %v", s, d.RequiresAssign(), want)
		}
	}
	if _, err := Lookup(Scheme(42)); !errors.Is(err, ErrConfig) {
		t.Errorf("Lookup(Scheme(42)) err = %v, want ErrConfig", err)
	}

	names := Names()
	want := []string{"baseline", "batching", "com", "bcom", "beam", "hybrid", "ecom"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(baselineDef{})
}

// TestForModeAndDegrade pins the mode→policy index and the resilience ladder.
func TestForModeAndDegrade(t *testing.T) {
	for _, m := range []Mode{PerSample, Batched, Offloaded, Uploaded} {
		if got := ForMode(m).Mode(); got != m {
			t.Errorf("ForMode(%v).Mode() = %v", m, got)
		}
	}
	for _, bad := range []Mode{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ForMode(%v) did not panic", bad)
				}
			}()
			ForMode(bad)
		}()
	}

	steps := []struct {
		from, to Mode
		ok       bool
	}{
		{Uploaded, Batched, true}, // a dead edge falls back to local batching
		{Offloaded, Batched, true},
		{Batched, PerSample, true},
		{PerSample, PerSample, false}, // the ladder's floor
	}
	for _, s := range steps {
		to, ok := Degrade(s.from)
		if to != s.to || ok != s.ok {
			t.Errorf("Degrade(%v) = %v, %v, want %v, %v", s.from, to, ok, s.to, s.ok)
		}
	}
}

// TestPolicyTable pins each built-in policy's verdict tuple to its Table II
// row — the semantic contract the golden corpus depends on.
func TestPolicyTable(t *testing.T) {
	rows := []struct {
		mode     Mode
		sample   SampleAction
		transfer TransferPlan
		place    Placement
		gate     CloseGate
	}{
		{PerSample, Interrupt, PerSampleTransfer, OnCPU, AwaitDelivery},
		{Batched, Buffer, CoalescedTransfer, OnCPU, AwaitCollection},
		{Offloaded, Hold, ResultOnlyTransfer, OnMCU, AwaitCollection},
		{Uploaded, Buffer, CoalescedTransfer, OnEdge, AwaitCollection},
	}
	for _, r := range rows {
		p := ForMode(r.mode)
		if p.OnSampleReady() != r.sample || p.PlanTransfer() != r.transfer ||
			p.PlaceCompute() != r.place || p.OnWindowClose() != r.gate {
			t.Errorf("%v policy = (%v %v %v %v), want (%v %v %v %v)", r.mode,
				p.OnSampleReady(), p.PlanTransfer(), p.PlaceCompute(), p.OnWindowClose(),
				r.sample, r.transfer, r.place, r.gate)
		}
	}
}

// TestModesOf projects a mixed assignment back to modes.
func TestModesOf(t *testing.T) {
	pols := map[apps.ID]Policy{
		"A1": ForMode(PerSample),
		"A2": ForMode(Batched),
		"A3": ForMode(Offloaded),
	}
	modes := ModesOf(pols)
	if len(modes) != 3 ||
		modes["A1"] != PerSample || modes["A2"] != Batched || modes["A3"] != Offloaded {
		t.Errorf("ModesOf = %v", modes)
	}
}
