// Package scheme makes the paper's execution schemes first-class values: a
// scheme is a registered composition of per-app policies (which processor
// computes, how samples cross the link, when the CPU is interrupted) plus a
// stream topology (whether concurrent apps share physical sensor streams).
//
// The paper (Table II, §III–§IV) defines every scheme as a distinct
// composition of the same four routines — Data Collection, Interrupt, Data
// Transfer, and App-specific Computation. This package mirrors that shape:
//
//   - Policy exposes one hook per routine (OnSampleReady, PlanTransfer,
//     PlaceCompute, OnWindowClose); the hub runner is a scheme-agnostic event
//     conductor that executes whatever the active policy decides.
//   - Def bundles a scheme's config validation, per-app policy assignment,
//     and stream planning; Register/Lookup make the set open-ended, so a new
//     hybrid (adaptive batching, alternative partitioners) is a new ~100-line
//     file here, not surgery on the runner.
//
// All Scheme/Mode-dependent control flow lives in this package — enforced by
// `make lint-scheme`.
package scheme

import (
	"errors"
	"fmt"
	"strings"
)

// Scheme selects the execution scheme for a run.
type Scheme int

// Execution schemes. Baseline..BEAM are the paper's five (§III, §IV);
// Hybrid and ECOM extend the table with the edge tier: Hybrid executes an
// arbitrary per-app mode partition (the optimizer's emission vehicle), ECOM
// is the registered composition the scheme-space search converges on —
// heavy apps upload to the edge, everything else offloads to the MCU.
const (
	Baseline Scheme = iota + 1
	Batching
	COM
	BCOM
	BEAM
	Hybrid
	ECOM
)

// Errors callers match with errors.Is. The messages keep their historical
// hub-level text: this package took over config authority from internal/hub,
// and every CLI message and test built on the old wording must stay stable.
var (
	ErrConfig        = errors.New("hub: invalid config")
	ErrUnoffloadable = errors.New("hub: app cannot be offloaded")
)

// String names the scheme as the paper's figures do.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Batching:
		return "Batching"
	case COM:
		return "COM"
	case BCOM:
		return "BCOM"
	case BEAM:
		return "BEAM"
	case Hybrid:
		return "Hybrid"
	case ECOM:
		return "ECOM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Parse resolves a case-insensitive scheme name ("baseline", "batching",
// "com", "bcom", "beam", "hybrid", "ecom") against the registry — the
// CLI-facing inverse of String. Only registered schemes parse, so an
// unplugged experimental scheme disappears from every CLI at once.
func Parse(name string) (Scheme, error) {
	want := strings.TrimSpace(name)
	for _, d := range All() {
		if strings.EqualFold(d.Scheme().String(), want) {
			return d.Scheme(), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown scheme %q", ErrConfig, name)
}

// MarshalText encodes the scheme by name so configs and results serialize
// to JSON as "Batching" rather than a bare integer.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText is the inverse of MarshalText (it accepts any case,
// delegating to Parse).
func (s *Scheme) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Mode is the per-app execution decision inside a scheme — the row of the
// scheme table one app actually runs. Every Mode maps to one built-in Policy
// (ForMode); schemes are compositions of modes across apps.
type Mode int

// Per-app modes.
const (
	// PerSample interrupts the CPU for every sensor sample (Baseline/BEAM).
	PerSample Mode = iota + 1
	// Batched buffers a window at the MCU and transfers in bulk.
	Batched
	// Offloaded runs the app-specific computation on the MCU.
	Offloaded
	// Uploaded buffers a window at the MCU like Batched, then uploads it
	// through the main radio and computes in the app's edge container.
	Uploaded
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PerSample:
		return "PerSample"
	case Batched:
		return "Batched"
	case Offloaded:
		return "Offloaded"
	case Uploaded:
		return "Uploaded"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MarshalText encodes the mode by name (see Scheme.MarshalText).
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText is the inverse of MarshalText.
func (m *Mode) UnmarshalText(text []byte) error {
	for _, known := range []Mode{PerSample, Batched, Offloaded, Uploaded} {
		if known.String() == string(text) {
			*m = known
			return nil
		}
	}
	return fmt.Errorf("%w: unknown mode %q", ErrConfig, text)
}
