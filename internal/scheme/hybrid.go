package scheme

import (
	"fmt"

	"iothub/internal/apps"
)

// hybridDef executes an arbitrary explicit per-app mode partition — any
// composition of the four policy rows, including the edge tier's Uploaded.
// Where BCOM's partition comes from the internal/core planner's fixed
// admission test, Hybrid's comes from whoever searched the composition
// space (the internal/optimizer plan emitter): this is the execution
// vehicle that lets new schemes fall out of search rather than hand-coding.
type hybridDef struct{}

func init() { Register(hybridDef{}) }

func (hybridDef) Scheme() Scheme       { return Hybrid }
func (hybridDef) RequiresAssign() bool { return true }

func (hybridDef) Validate(v ConfigView) error {
	if v.Assign == nil {
		return fmt.Errorf("%w: Hybrid requires Assign (the internal/optimizer plan emitter produces it)", ErrConfig)
	}
	return nil
}

func (hybridDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	out := make(map[apps.ID]Policy, len(v.Specs))
	for _, sp := range v.Specs {
		m, ok := v.Assign[sp.ID]
		if !ok {
			return nil, fmt.Errorf("%w: no assignment for %s", ErrConfig, sp.ID)
		}
		if m < PerSample || m > Uploaded {
			return nil, fmt.Errorf("%w: %s assigned unknown mode %v", ErrConfig, sp.ID, m)
		}
		if m == Offloaded && sp.Heavy {
			return nil, fmt.Errorf("%w: %s is heavy-weight", ErrUnoffloadable, sp.ID)
		}
		out[sp.ID] = ForMode(m)
	}
	return out, nil
}

func (hybridDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanDedicated(v)
}
