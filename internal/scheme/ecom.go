package scheme

import (
	"iothub/internal/apps"
)

// ecomDef is ECOM (Edge-assisted Computation Offloading Mechanism): the
// composition the scheme-space search converges on for mixes that pair
// heavy apps with offloadable ones. Heavy-weight apps — the ones COM must
// reject and BCOM can only batch locally — upload their windows to the edge
// tier (Uploaded); everything else offloads to the MCU (Offloaded), exactly
// as under COM. The hub CPU never runs app-specific computation: the heavy
// app's dominant compute cost moves to the edge container for the price of
// its sample bytes' airtime.
//
// ECOM was first found by internal/optimizer's exhaustive search over
// per-app mode compositions (see the committed example plan in
// internal/optimizer/testdata); registering the winner makes it a
// first-class scheme, and the byte-identity of this derivation against the
// optimizer-emitted Hybrid plan is pinned by test.
type ecomDef struct{}

func init() { Register(ecomDef{}) }

func (ecomDef) Scheme() Scheme              { return ECOM }
func (ecomDef) RequiresAssign() bool        { return false }
func (ecomDef) Validate(v ConfigView) error { return rejectAssign(v) }

func (ecomDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	out := make(map[apps.ID]Policy, len(v.Specs))
	for _, sp := range v.Specs {
		if sp.Heavy {
			out[sp.ID] = ForMode(Uploaded)
			continue
		}
		out[sp.ID] = ForMode(Offloaded)
	}
	return out, nil
}

func (ecomDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanDedicated(v)
}
