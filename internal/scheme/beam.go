package scheme

import (
	"fmt"

	"iothub/internal/apps"
)

// beamDef is the prior work's BEAM row: per-app behavior is exactly
// Baseline's per-sample policy, but the stream topology is shared —
// concurrent apps using the same sensor share one read, one interrupt, and
// one transfer per sample, with slower consumers taking strided samples.
// Sharing needs at least two apps to mean anything.
type beamDef struct{}

func init() { Register(beamDef{}) }

func (beamDef) Scheme() Scheme       { return BEAM }
func (beamDef) RequiresAssign() bool { return false }

func (beamDef) Validate(v ConfigView) error {
	if err := rejectAssign(v); err != nil {
		return err
	}
	if len(v.Specs) < 2 {
		return fmt.Errorf("%w: BEAM needs at least two apps", ErrConfig)
	}
	return nil
}

func (beamDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	return uniformPolicies(v, ForMode(PerSample)), nil
}

func (beamDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanShared(v)
}
