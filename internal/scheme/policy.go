package scheme

// Policy is one app's execution behavior, expressed as one decision hook per
// routine of the paper's Table II. Policies are pure decision objects: the
// hub's event conductor consults them and executes the verdicts against the
// hardware models, so a policy never touches the scheduler and cannot
// perturb timing by itself.
//
//	Routine                   Hook            decides
//	------------------------  --------------  ------------------------------
//	Data Collection/Interrupt OnSampleReady   interrupt now, buffer, or hold
//	Data Transfer             PlanTransfer    per-sample vs coalesced vs result-only
//	App-specific Computation  PlaceCompute    CPU vs MCU offload
//	(window completion)       OnWindowClose   which progress gate closes a window
type Policy interface {
	// Mode names the scheme-table row this policy realizes; results and the
	// degradation ladder are recorded in terms of it.
	Mode() Mode
	// OnSampleReady decides what the MCU does with one freshly formatted
	// sample for this app.
	OnSampleReady() SampleAction
	// PlanTransfer decides how the app's window data crosses the link.
	PlanTransfer() TransferPlan
	// PlaceCompute decides which processor runs the app-specific computation.
	PlaceCompute() Placement
	// OnWindowClose decides which per-window progress counter must fill
	// before the window's downstream step fires.
	OnWindowClose() CloseGate
}

// SampleAction is OnSampleReady's verdict.
type SampleAction int

const (
	// Interrupt raises a per-sample MCU→CPU interrupt and transfers the
	// sample immediately (Baseline/BEAM collection).
	Interrupt SampleAction = iota + 1
	// Buffer appends the sample to the app's MCU-side batch; it crosses in a
	// later bulk transfer and raises no interrupt of its own.
	Buffer
	// Hold keeps the sample at the MCU for in-place computation; nothing
	// crosses the link until the result notification.
	Hold
)

// TransferPlan is PlanTransfer's verdict.
type TransferPlan int

const (
	// PerSampleTransfer moves every sample individually as it is collected;
	// by window close the data already sits at the CPU.
	PerSampleTransfer TransferPlan = iota + 1
	// CoalescedTransfer bulk-flushes the buffered window in one (or, under
	// RAM pressure, few) transfers.
	CoalescedTransfer
	// ResultOnlyTransfer moves only the small result notification; the raw
	// samples never leave the MCU.
	ResultOnlyTransfer
)

// Placement is PlaceCompute's verdict.
type Placement int

const (
	// OnCPU runs the app-specific computation on the hub CPU.
	OnCPU Placement = iota + 1
	// OnMCU offloads the app-specific computation to the MCU.
	OnMCU
	// OnEdge uploads the window's data and runs the computation on the
	// edge tier's container executor (internal/edge).
	OnEdge
)

// CloseGate is OnWindowClose's verdict: the progress counter whose
// exhaustion completes a window.
type CloseGate int

const (
	// AwaitDelivery closes the window once every still-expected sample has
	// landed at the CPU (per-sample transfers must finish first).
	AwaitDelivery CloseGate = iota + 1
	// AwaitCollection closes the window once every still-expected sample has
	// been formatted at the MCU (the transfer, if any, follows the close).
	AwaitCollection
)

// perSamplePolicy is Baseline/BEAM's row: every sample interrupts the CPU.
type perSamplePolicy struct{}

func (perSamplePolicy) Mode() Mode                  { return PerSample }
func (perSamplePolicy) OnSampleReady() SampleAction { return Interrupt }
func (perSamplePolicy) PlanTransfer() TransferPlan  { return PerSampleTransfer }
func (perSamplePolicy) PlaceCompute() Placement     { return OnCPU }
func (perSamplePolicy) OnWindowClose() CloseGate    { return AwaitDelivery }

// batchedPolicy is Batching's row: the MCU buffers a window, one bulk flush.
type batchedPolicy struct{}

func (batchedPolicy) Mode() Mode                  { return Batched }
func (batchedPolicy) OnSampleReady() SampleAction { return Buffer }
func (batchedPolicy) PlanTransfer() TransferPlan  { return CoalescedTransfer }
func (batchedPolicy) PlaceCompute() Placement     { return OnCPU }
func (batchedPolicy) OnWindowClose() CloseGate    { return AwaitCollection }

// offloadedPolicy is COM's row: the MCU computes, only the result crosses.
type offloadedPolicy struct{}

func (offloadedPolicy) Mode() Mode                  { return Offloaded }
func (offloadedPolicy) OnSampleReady() SampleAction { return Hold }
func (offloadedPolicy) PlanTransfer() TransferPlan  { return ResultOnlyTransfer }
func (offloadedPolicy) PlaceCompute() Placement     { return OnMCU }
func (offloadedPolicy) OnWindowClose() CloseGate    { return AwaitCollection }

// uploadedPolicy is the edge tier's row: the MCU buffers a window exactly
// like Batching, but the bulk flush continues past the CPU onto the uplink
// radio, and the computation runs in the app's edge container.
type uploadedPolicy struct{}

func (uploadedPolicy) Mode() Mode                  { return Uploaded }
func (uploadedPolicy) OnSampleReady() SampleAction { return Buffer }
func (uploadedPolicy) PlanTransfer() TransferPlan  { return CoalescedTransfer }
func (uploadedPolicy) PlaceCompute() Placement     { return OnEdge }
func (uploadedPolicy) OnWindowClose() CloseGate    { return AwaitCollection }

// byMode indexes the built-in policy singletons; ForMode is on the
// conductor's per-sample path and must stay allocation-free.
var byMode = [...]Policy{
	PerSample: perSamplePolicy{},
	Batched:   batchedPolicy{},
	Offloaded: offloadedPolicy{},
	Uploaded:  uploadedPolicy{},
}

// ForMode returns the built-in policy realizing a mode. It panics on an
// unknown mode: modes reach the conductor only through validated configs and
// the ladder, so an out-of-range value is a programming error.
func ForMode(m Mode) Policy {
	if m < PerSample || m > Uploaded {
		panic("scheme: no policy for " + m.String())
	}
	return byMode[m]
}

// Degrade is the resilience ladder (§ fault handling): one step down in
// remote-dependence — Uploaded and Offloaded both fall back to Batched (a
// local placement: a degraded app must not depend on a dead edge link or a
// crashing MCU's compute), and Batched to PerSample. The second result is
// false at the ladder's floor (PerSample has nothing below it).
func Degrade(from Mode) (Mode, bool) {
	switch from {
	case Uploaded:
		return Batched, true
	case Offloaded:
		return Batched, true
	case Batched:
		return PerSample, true
	default:
		return from, false
	}
}
