package scheme

import (
	"fmt"
	"time"

	"iothub/internal/apps"
	"iothub/internal/sensor"
)

// StreamSpec describes one physical sampling schedule before the conductor
// binds it to the event kernel: which sensor, how often, how wide, and which
// apps consume it at which strides. Under the dedicated topology every
// (app, sensor) pair is its own stream; under BEAM's shared topology a
// sensor's users share one stream at the fastest requested rate.
type StreamSpec struct {
	// Sensor and Spec identify the physical device.
	Sensor sensor.ID
	Spec   sensor.Spec
	// Bytes is the per-sample payload (the widest consumer's, under sharing).
	Bytes int
	// PerWindow is the stream's sampling rate (the fastest consumer's).
	PerWindow int
	// Period is the sampling interval (Window / PerWindow).
	Period time.Duration
	// Track names the energy-meter track the stream's reads charge.
	Track string
	// Consumers lists the apps fed by the stream.
	Consumers []Consumer
}

// Consumer binds one app to a stream: the app takes every Stride-th sample
// (BEAM's integer downsampling for rate-mismatched sharers; 1 elsewhere).
type Consumer struct {
	App    apps.ID
	Stride int
}

// PlanDedicated lays out the default topology: one stream per (app, sensor)
// pair at the app's own rate, energy tracked per pair.
func PlanDedicated(v ConfigView) ([]StreamSpec, error) {
	var out []StreamSpec
	for _, sp := range v.Specs {
		for _, u := range sp.Sensors {
			sspec, err := sensor.Lookup(u.Sensor)
			if err != nil {
				return nil, err
			}
			bytes, err := u.SampleBytes()
			if err != nil {
				return nil, err
			}
			perWindow, err := sp.SamplesPerWindow(u.Sensor)
			if err != nil {
				return nil, err
			}
			out = append(out, StreamSpec{
				Sensor:    u.Sensor,
				Spec:      sspec,
				Bytes:     bytes,
				PerWindow: perWindow,
				Period:    v.Window / time.Duration(perWindow),
				Track:     fmt.Sprintf("sensor:%s:%s", u.Sensor, sp.ID),
				Consumers: []Consumer{{App: sp.ID, Stride: 1}},
			})
		}
	}
	return out, nil
}

// PlanShared lays out BEAM's topology: every sensor's users are grouped into
// one stream running at the fastest requested rate, and slower consumers
// take strided samples. Rates must divide evenly (BEAM downsamples by
// integer factors). Streams appear in first-use order, energy tracked per
// sensor (the read is physically shared).
func PlanShared(v ConfigView) ([]StreamSpec, error) {
	type user struct {
		app       apps.ID
		perWindow int
		bytes     int
	}
	order := make([]sensor.ID, 0, 8)
	bySensor := make(map[sensor.ID][]user)
	for _, sp := range v.Specs {
		for _, u := range sp.Sensors {
			perWindow, err := sp.SamplesPerWindow(u.Sensor)
			if err != nil {
				return nil, err
			}
			bytes, err := u.SampleBytes()
			if err != nil {
				return nil, err
			}
			if _, ok := bySensor[u.Sensor]; !ok {
				order = append(order, u.Sensor)
			}
			bySensor[u.Sensor] = append(bySensor[u.Sensor], user{app: sp.ID, perWindow: perWindow, bytes: bytes})
		}
	}
	var out []StreamSpec
	for _, id := range order {
		users := bySensor[id]
		sspec, err := sensor.Lookup(id)
		if err != nil {
			return nil, err
		}
		s := StreamSpec{
			Sensor: id,
			Spec:   sspec,
			Track:  fmt.Sprintf("sensor:%s", id),
		}
		for _, u := range users {
			if u.perWindow > s.PerWindow {
				s.PerWindow = u.perWindow
			}
			if u.bytes > s.Bytes {
				s.Bytes = u.bytes
			}
		}
		for _, u := range users {
			if s.PerWindow%u.perWindow != 0 {
				return nil, fmt.Errorf("%w: BEAM cannot share %s between rates %d and %d per window",
					ErrConfig, id, s.PerWindow, u.perWindow)
			}
			s.Consumers = append(s.Consumers, Consumer{App: u.app, Stride: s.PerWindow / u.perWindow})
		}
		s.Period = v.Window / time.Duration(s.PerWindow)
		out = append(out, s)
	}
	return out, nil
}
