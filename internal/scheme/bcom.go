package scheme

import (
	"fmt"

	"iothub/internal/apps"
)

// bcomDef is the paper's BCOM row (§IV-E3): a composition of two policies
// selected per app by an explicit partition — offloadable apps take the COM
// policy, heavy ones the Batching policy. The partition comes from outside
// (the internal/core planner's admission test over MCU time and RAM
// budgets), which is why this is the one scheme with RequiresAssign.
type bcomDef struct{}

func init() { Register(bcomDef{}) }

func (bcomDef) Scheme() Scheme       { return BCOM }
func (bcomDef) RequiresAssign() bool { return true }

func (bcomDef) Validate(v ConfigView) error {
	if v.Assign == nil {
		return fmt.Errorf("%w: BCOM requires Assign (see internal/core planner)", ErrConfig)
	}
	return nil
}

func (bcomDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	out := make(map[apps.ID]Policy, len(v.Specs))
	for _, sp := range v.Specs {
		m, ok := v.Assign[sp.ID]
		if !ok {
			return nil, fmt.Errorf("%w: no assignment for %s", ErrConfig, sp.ID)
		}
		if m == Offloaded && sp.Heavy {
			return nil, fmt.Errorf("%w: %s is heavy-weight", ErrUnoffloadable, sp.ID)
		}
		out[sp.ID] = ForMode(m)
	}
	return out, nil
}

func (bcomDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanDedicated(v)
}
