package scheme

import "iothub/internal/apps"

// baselineDef is the paper's Baseline row: every sensor sample raises one
// MCU→CPU interrupt and one transfer, the app computes on the CPU, and the
// CPU stalls between samples (gaps sit below the sleep break-even). Each app
// owns its sensor streams outright.
type baselineDef struct{}

func init() { Register(baselineDef{}) }

func (baselineDef) Scheme() Scheme              { return Baseline }
func (baselineDef) RequiresAssign() bool        { return false }
func (baselineDef) Validate(v ConfigView) error { return rejectAssign(v) }

func (baselineDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	return uniformPolicies(v, ForMode(PerSample)), nil
}

func (baselineDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanDedicated(v)
}
