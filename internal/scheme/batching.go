package scheme

import "iothub/internal/apps"

// batchingDef is the paper's Batching row: the MCU accumulates each app's
// whole window in its RAM and raises one interrupt per bulk flush; the CPU
// suspends while the MCU senses and still computes the app itself. RAM
// pressure (concurrent batches, resilience escalation) forces early flushes
// — more interrupts, still far fewer than Baseline.
type batchingDef struct{}

func init() { Register(batchingDef{}) }

func (batchingDef) Scheme() Scheme              { return Batching }
func (batchingDef) RequiresAssign() bool        { return false }
func (batchingDef) Validate(v ConfigView) error { return rejectAssign(v) }

func (batchingDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	return uniformPolicies(v, ForMode(Batched)), nil
}

func (batchingDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanDedicated(v)
}
