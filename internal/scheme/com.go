package scheme

import (
	"fmt"

	"iothub/internal/apps"
)

// comDef is the paper's COM row (Computation Offloading Mechanism, §III-B):
// every app runs on the MCU, per-sample interrupts and transfers disappear,
// and only a small result notification crosses the link; bulk upstream
// traffic leaves through the MCU's own radio while the CPU power-gates into
// deep sleep. Heavy-weight apps cannot take this row at all.
type comDef struct{}

func init() { Register(comDef{}) }

func (comDef) Scheme() Scheme              { return COM }
func (comDef) RequiresAssign() bool        { return false }
func (comDef) Validate(v ConfigView) error { return rejectAssign(v) }

func (comDef) Policies(v ConfigView) (map[apps.ID]Policy, error) {
	out := make(map[apps.ID]Policy, len(v.Specs))
	for _, sp := range v.Specs {
		if sp.Heavy {
			return nil, fmt.Errorf("%w: %s is heavy-weight", ErrUnoffloadable, sp.ID)
		}
		out[sp.ID] = ForMode(Offloaded)
	}
	return out, nil
}

func (comDef) PlanStreams(v ConfigView) ([]StreamSpec, error) {
	return PlanDedicated(v)
}
