package scheme

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"iothub/internal/apps"
)

// ConfigView is the slice of a hub configuration a scheme definition is
// allowed to see: the app specs, the optional per-app mode partition, and
// the QoS window. It deliberately excludes live app instances, hardware
// handles, and the scheduler — scheme logic decides, the conductor executes.
type ConfigView struct {
	// Specs lists the concurrent apps' specifications in config order.
	Specs []apps.Spec
	// Assign is the explicit per-app mode partition; nil for every scheme
	// whose Def derives modes itself (BCOM and Hybrid require it).
	Assign map[apps.ID]Mode
	// Window is the common QoS window.
	Window time.Duration
}

// Def is one registered execution scheme: its config rules, its per-app
// policy assignment, and its stream topology. Together with the three Policy
// hooks these are the only places scheme semantics live; the hub runner
// contains no scheme-dependent branches.
type Def interface {
	// Scheme is the identity this definition registers under.
	Scheme() Scheme
	// RequiresAssign reports whether the scheme needs an explicit per-app
	// partition (produced by the internal/core planner). Callers above the
	// hub — fleet workers, CLIs — consult this instead of naming schemes.
	RequiresAssign() bool
	// Validate checks the scheme-specific config rules (Assign shape, app
	// count). General rules (non-empty apps, window agreement) are the hub's.
	Validate(v ConfigView) error
	// Policies resolves each app's Policy — the scheme's composition step.
	Policies(v ConfigView) (map[apps.ID]Policy, error)
	// PlanStreams lays out the physical sampling schedules: which sensor
	// streams exist, at what rates, feeding which apps at which strides.
	PlanStreams(v ConfigView) ([]StreamSpec, error)
}

var registry = map[Scheme]Def{}

// Register adds a scheme definition; it panics on a duplicate registration
// (definitions are wired at init time, so a clash is a programming error).
func Register(d Def) {
	s := d.Scheme()
	if _, dup := registry[s]; dup {
		panic("scheme: duplicate registration for " + s.String())
	}
	registry[s] = d
}

// Lookup resolves a scheme to its registered definition.
func Lookup(s Scheme) (Def, error) {
	d, ok := registry[s]
	if !ok {
		return nil, fmt.Errorf("%w: unknown scheme %v", ErrConfig, s)
	}
	return d, nil
}

// All returns every registered definition ordered by Scheme value — the
// paper's table order for the built-ins, registration-independent.
func All() []Def {
	out := make([]Def, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scheme() < out[j].Scheme() })
	return out
}

// Names returns the registered schemes' lower-case CLI names in table order
// — the single source for every flag help string and spec format doc.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = strings.ToLower(d.Scheme().String())
	}
	return out
}

// ModesOf projects a policy assignment onto the per-app Mode map recorded in
// run results and consumed by the degradation ladder.
func ModesOf(pols map[apps.ID]Policy) map[apps.ID]Mode {
	out := make(map[apps.ID]Mode, len(pols))
	for id, p := range pols {
		out[id] = p.Mode()
	}
	return out
}

// uniformPolicies assigns one policy to every app — the composition shape of
// every non-partitioned scheme.
func uniformPolicies(v ConfigView, p Policy) map[apps.ID]Policy {
	out := make(map[apps.ID]Policy, len(v.Specs))
	for _, sp := range v.Specs {
		out[sp.ID] = p
	}
	return out
}

// rejectAssign is the shared rule of every scheme that derives its own
// partition.
func rejectAssign(v ConfigView) error {
	if v.Assign != nil {
		return fmt.Errorf("%w: Assign is only valid with a partitioned scheme (BCOM, Hybrid)", ErrConfig)
	}
	return nil
}
